#include "src/xquery/parser.h"

#include <map>
#include <vector>

#include "src/common/str.h"
#include "src/xquery/lexer.h"

namespace xqjg::xquery {
namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Run() {
    XQJG_RETURN_NOT_OK(ParseProlog());
    XQJG_ASSIGN_OR_RETURN(ExprPtr e, ParseExprSingle());
    if (!AtEof()) {
      return Err("trailing tokens after expression");
    }
    return e;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t idx = pos_ + ahead;
    if (idx >= tokens_.size()) idx = tokens_.size() - 1;
    return tokens_[idx];
  }
  bool AtEof() const { return Peek().kind == TokenKind::kEof; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Match(TokenKind kind) {
    if (Peek().kind != kind) return false;
    ++pos_;
    return true;
  }
  bool MatchName(std::string_view word) {
    if (Peek().kind != TokenKind::kName || Peek().text != word) return false;
    ++pos_;
    return true;
  }
  bool PeekName(std::string_view word, size_t ahead = 0) const {
    return Peek(ahead).kind == TokenKind::kName && Peek(ahead).text == word;
  }

  Status Err(const std::string& msg) const {
    return Status::ParseError(
        StrPrintf("offset %zu: %s", Peek().offset, msg.c_str()));
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Err(StrPrintf("expected %s, found %s", TokenKindToString(kind),
                           TokenKindToString(Peek().kind)));
    }
    ++pos_;
    return Status::OK();
  }

  // Prolog := ('declare' 'variable' $var ('as' TypeName)? 'external' ';')*
  // Each declaration introduces an external parameter: later references to
  // the variable become kParam markers bound at Execute time. Numeric
  // types (xs:integer/decimal/double) compare against the typed `data`
  // column; xs:string (and untyped declarations) against `value` — the
  // same split the compiler applies to literals.
  Status ParseProlog() {
    while (PeekName("declare") && PeekName("variable", 1)) {
      MatchName("declare");
      MatchName("variable");
      if (Peek().kind != TokenKind::kVariable) {
        return Err("expected $variable in external declaration");
      }
      std::string name = Advance().text;
      bool numeric = false;
      if (MatchName("as")) {
        if (Peek().kind != TokenKind::kName) {
          return Err("expected type name after 'as'");
        }
        const std::string type = Advance().text;
        if (type == "xs:integer" || type == "xs:decimal" ||
            type == "xs:double") {
          numeric = true;
        } else if (type != "xs:string") {
          return Status::NotSupported(
              "external variable type '" + type +
              "' (use xs:string, xs:integer, xs:decimal, or xs:double)");
        }
      }
      if (!MatchName("external")) {
        return Status::NotSupported(
            "only 'declare variable $x ... external;' prolog declarations "
            "are supported");
      }
      XQJG_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      if (params_.count(name)) {
        return Err("duplicate external declaration $" + name);
      }
      const int slot = static_cast<int>(params_.size());
      params_[name] = {slot, numeric};
    }
    return Status::OK();
  }

  /// FLWOR clauses must not shadow an external parameter — a `$x` in the
  /// body would silently change meaning between bindings.
  Status CheckNotExternal(const std::string& var) {
    if (params_.count(var)) {
      return Err("variable $" + var + " shadows an external parameter");
    }
    return Status::OK();
  }

  // ExprSingle := FLWOR | IfExpr | Comparison
  Result<ExprPtr> ParseExprSingle() {
    if (PeekName("for") || PeekName("let")) return ParseFlwor();
    if (PeekName("if") && Peek(1).kind == TokenKind::kLParen) {
      return ParseIf();
    }
    return ParseComparison();
  }

  // FLWOR := (for-clause | let-clause)+ ('where' Cond)? 'return' ExprSingle
  Result<ExprPtr> ParseFlwor() {
    struct Binding {
      bool is_let;
      std::string var;
      ExprPtr expr;
    };
    std::vector<Binding> bindings;
    while (true) {
      if (MatchName("for")) {
        do {
          if (Peek().kind != TokenKind::kVariable) {
            return Err("expected $variable in for clause");
          }
          std::string var = Advance().text;
          XQJG_RETURN_NOT_OK(CheckNotExternal(var));
          if (!MatchName("in")) return Err("expected 'in' in for clause");
          XQJG_ASSIGN_OR_RETURN(ExprPtr in, ParseExprSingle());
          bindings.push_back({false, std::move(var), std::move(in)});
        } while (Match(TokenKind::kComma));
      } else if (MatchName("let")) {
        do {
          if (Peek().kind != TokenKind::kVariable) {
            return Err("expected $variable in let clause");
          }
          std::string var = Advance().text;
          XQJG_RETURN_NOT_OK(CheckNotExternal(var));
          XQJG_RETURN_NOT_OK(Expect(TokenKind::kAssign));
          XQJG_ASSIGN_OR_RETURN(ExprPtr value, ParseExprSingle());
          bindings.push_back({true, std::move(var), std::move(value)});
        } while (Match(TokenKind::kComma));
      } else {
        break;
      }
    }
    ExprPtr where;
    if (MatchName("where")) {
      XQJG_ASSIGN_OR_RETURN(where, ParseCondition());
    }
    if (!MatchName("return")) return Err("expected 'return' in FLWOR");
    XQJG_ASSIGN_OR_RETURN(ExprPtr body, ParseExprSingle());
    if (where) body = MakeIf(std::move(where), std::move(body));
    // Innermost binding wraps the body first.
    for (auto it = bindings.rbegin(); it != bindings.rend(); ++it) {
      body = it->is_let ? MakeLet(it->var, it->expr, std::move(body))
                        : MakeFor(it->var, it->expr, std::move(body));
    }
    return body;
  }

  // IfExpr := 'if' '(' Cond ')' 'then' ExprSingle 'else' '(' ')'
  Result<ExprPtr> ParseIf() {
    MatchName("if");
    XQJG_RETURN_NOT_OK(Expect(TokenKind::kLParen));
    XQJG_ASSIGN_OR_RETURN(ExprPtr cond, ParseCondition());
    XQJG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
    if (!MatchName("then")) return Err("expected 'then'");
    XQJG_ASSIGN_OR_RETURN(ExprPtr then_branch, ParseExprSingle());
    if (!MatchName("else")) return Err("expected 'else'");
    if (!Match(TokenKind::kLParen) || !Match(TokenKind::kRParen)) {
      return Status::NotSupported(
          "the fragment requires the else branch to be the empty sequence ()");
    }
    return MakeIf(std::move(cond), std::move(then_branch));
  }

  // Condition := Comparison ('and' Comparison)*
  Result<ExprPtr> ParseCondition() {
    XQJG_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (PeekName("and")) {
      MatchName("and");
      XQJG_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = MakeAnd(std::move(lhs), std::move(rhs));
    }
    if (PeekName("or")) {
      return Status::NotSupported("'or' is outside the implemented fragment");
    }
    return lhs;
  }

  static bool IsCompToken(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
      case TokenKind::kNe:
      case TokenKind::kLt:
      case TokenKind::kLe:
      case TokenKind::kGt:
      case TokenKind::kGe:
        return true;
      default:
        return false;
    }
  }

  static CompOp TokenToCompOp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
        return CompOp::kEq;
      case TokenKind::kNe:
        return CompOp::kNe;
      case TokenKind::kLt:
        return CompOp::kLt;
      case TokenKind::kLe:
        return CompOp::kLe;
      case TokenKind::kGt:
        return CompOp::kGt;
      default:
        return CompOp::kGe;
    }
  }

  // Comparison := Operand (CompOp Operand)?
  Result<ExprPtr> ParseComparison() {
    XQJG_ASSIGN_OR_RETURN(ExprPtr lhs, ParseOperand());
    if (!IsCompToken(Peek().kind)) return lhs;
    CompOp op = TokenToCompOp(Advance().kind);
    XQJG_ASSIGN_OR_RETURN(ExprPtr rhs, ParseOperand());
    return MakeComp(std::move(lhs), op, std::move(rhs));
  }

  // Operand := Literal | PathExpr
  Result<ExprPtr> ParseOperand() {
    if (Peek().kind == TokenKind::kNumber) {
      return MakeNumLit(Advance().num);
    }
    if (Peek().kind == TokenKind::kString) {
      return MakeStrLit(Advance().text);
    }
    return ParsePath();
  }

  // PathExpr := ('/' | '//')? Primary? (('/' | '//') Step | Predicate)*
  Result<ExprPtr> ParsePath() {
    ExprPtr current;
    if (Peek().kind == TokenKind::kSlash) {
      Advance();
      current = MakeRoot();
      if (!StartsStep()) return current;  // bare "/"
      XQJG_ASSIGN_OR_RETURN(current, ParseStep(std::move(current)));
    } else if (Peek().kind == TokenKind::kSlashSlash) {
      Advance();
      current = MakeStep(MakeRoot(), Axis::kDescendantOrSelf,
                         NodeTest{TestKind::kAnyNode, ""});
      XQJG_ASSIGN_OR_RETURN(current, ParseStep(std::move(current)));
    } else {
      XQJG_ASSIGN_OR_RETURN(current, ParsePrimary());
    }
    while (true) {
      if (Match(TokenKind::kSlash)) {
        XQJG_ASSIGN_OR_RETURN(current, ParseStep(std::move(current)));
      } else if (Match(TokenKind::kSlashSlash)) {
        current = MakeStep(std::move(current), Axis::kDescendantOrSelf,
                           NodeTest{TestKind::kAnyNode, ""});
        XQJG_ASSIGN_OR_RETURN(current, ParseStep(std::move(current)));
      } else if (Match(TokenKind::kLBracket)) {
        if (Peek().kind == TokenKind::kNumber) {
          return Status::NotSupported(
              "positional predicates are outside the implemented fragment");
        }
        XQJG_ASSIGN_OR_RETURN(ExprPtr pred, ParseCondition());
        XQJG_RETURN_NOT_OK(Expect(TokenKind::kRBracket));
        current = MakePredicate(std::move(current), std::move(pred));
      } else {
        break;
      }
    }
    return current;
  }

  // Primary := doc("uri") | $var | '.' | '(' ')' | '(' Expr ')' | Step
  Result<ExprPtr> ParsePrimary() {
    if (PeekName("doc") && Peek(1).kind == TokenKind::kLParen) {
      MatchName("doc");
      Match(TokenKind::kLParen);
      if (Peek().kind != TokenKind::kString) {
        return Err("doc() expects a string literal URI");
      }
      std::string uri = Advance().text;
      XQJG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return MakeDoc(std::move(uri));
    }
    if (Peek().kind == TokenKind::kVariable) {
      std::string name = Advance().text;
      auto it = params_.find(name);
      if (it != params_.end()) {
        return MakeParam(std::move(name), it->second.slot,
                         it->second.numeric);
      }
      return MakeVar(std::move(name));
    }
    if (Match(TokenKind::kDot)) {
      return MakeContextItem();
    }
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      if (Match(TokenKind::kRParen)) return MakeEmptySeq();
      XQJG_ASSIGN_OR_RETURN(ExprPtr inner, ParseExprSingle());
      if (Peek().kind == TokenKind::kComma) {
        return Status::NotSupported(
            "sequence construction (e1, e2) is outside the implemented "
            "fragment");
      }
      XQJG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return inner;
    }
    if (StartsStep()) {
      // Relative path: an implicit context-item step.
      return ParseStep(MakeContextItem());
    }
    return Err(StrPrintf("unexpected %s", TokenKindToString(Peek().kind)));
  }

  bool StartsStep() const {
    switch (Peek().kind) {
      case TokenKind::kName:
      case TokenKind::kAt:
      case TokenKind::kStar:
        return true;
      default:
        return false;
    }
  }

  static std::optional<Axis> AxisFromName(const std::string& name) {
    if (name == "child") return Axis::kChild;
    if (name == "descendant") return Axis::kDescendant;
    if (name == "descendant-or-self") return Axis::kDescendantOrSelf;
    if (name == "self") return Axis::kSelf;
    if (name == "following") return Axis::kFollowing;
    if (name == "following-sibling") return Axis::kFollowingSibling;
    if (name == "parent") return Axis::kParent;
    if (name == "ancestor") return Axis::kAncestor;
    if (name == "ancestor-or-self") return Axis::kAncestorOrSelf;
    if (name == "preceding") return Axis::kPreceding;
    if (name == "preceding-sibling") return Axis::kPrecedingSibling;
    if (name == "attribute") return Axis::kAttribute;
    return std::nullopt;
  }

  // Step := '@' (Name | '*') | Axis '::' NodeTest | NodeTest
  Result<ExprPtr> ParseStep(ExprPtr input) {
    if (Match(TokenKind::kAt)) {
      if (Match(TokenKind::kStar)) {
        return MakeStep(std::move(input), Axis::kAttribute,
                        NodeTest{TestKind::kWildcard, ""});
      }
      if (Peek().kind != TokenKind::kName) {
        return Err("expected attribute name after '@'");
      }
      return MakeStep(std::move(input), Axis::kAttribute,
                      NodeTest{TestKind::kName, Advance().text});
    }
    Axis axis = Axis::kChild;
    if (Peek().kind == TokenKind::kName &&
        Peek(1).kind == TokenKind::kAxisSep) {
      auto named = AxisFromName(Peek().text);
      if (!named) return Err("unknown axis '" + Peek().text + "'");
      axis = *named;
      Advance();
      Advance();
    }
    XQJG_ASSIGN_OR_RETURN(NodeTest test, ParseNodeTest());
    if (axis == Axis::kAttribute && test.kind == TestKind::kName) {
      // attribute::n keeps the name test; principal node kind is attribute.
    }
    return MakeStep(std::move(input), axis, std::move(test));
  }

  Result<NodeTest> ParseNodeTest() {
    if (Match(TokenKind::kStar)) return NodeTest{TestKind::kWildcard, ""};
    if (Peek().kind != TokenKind::kName) {
      return Err("expected node test");
    }
    std::string name = Advance().text;
    if (Peek().kind == TokenKind::kLParen) {
      Advance();
      std::string arg;
      if (Peek().kind == TokenKind::kName) arg = Advance().text;
      XQJG_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      if (name == "node") return NodeTest{TestKind::kAnyNode, ""};
      if (name == "text") return NodeTest{TestKind::kText, ""};
      if (name == "element") return NodeTest{TestKind::kElement, arg};
      if (name == "attribute") return NodeTest{TestKind::kAttribute, arg};
      if (name == "comment") return NodeTest{TestKind::kComment, ""};
      if (name == "processing-instruction") return NodeTest{TestKind::kPi, ""};
      return Err("unknown kind test '" + name + "()'");
    }
    return NodeTest{TestKind::kName, std::move(name)};
  }

  struct ParamInfo {
    int slot = -1;
    bool numeric = false;
  };

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, ParamInfo> params_;  ///< declared externals
};

}  // namespace

Result<ExprPtr> Parse(std::string_view query) {
  XQJG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(query));
  Parser parser(std::move(tokens));
  return parser.Run();
}

}  // namespace xqjg::xquery
