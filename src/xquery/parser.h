// Recursive-descent parser for the XQuery fragment (paper Fig. 1 plus the
// evaluation section's extensions: let, where, multi-binding FLWOR,
// predicates, `and` conjunction, abbreviated steps `//` `@`, absolute
// paths, and node-node general comparisons).
#ifndef XQJG_XQUERY_PARSER_H_
#define XQJG_XQUERY_PARSER_H_

#include <string_view>

#include "src/common/status.h"
#include "src/xquery/ast.h"

namespace xqjg::xquery {

/// Parses `query` into a surface AST. Expressions outside the fragment
/// produce Status::NotSupported with a pointer to the offending construct.
Result<ExprPtr> Parse(std::string_view query);

}  // namespace xqjg::xquery

#endif  // XQJG_XQUERY_PARSER_H_
