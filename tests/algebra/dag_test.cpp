// DAG utilities: traversal orders, parent maps, and — critically —
// ReplaceChild lifetime safety. ReplaceChild walks a raw-pointer topo
// order while overwriting child slots; it must keep the detached subtree
// alive until the walk completes (regression: heap-use-after-free under
// ASan when the replaced node owned the only reference to a deep chain).
#include <gtest/gtest.h>

#include "src/algebra/dag.h"
#include "src/algebra/operators.h"

namespace xqjg::algebra {
namespace {

OpPtr Lit(const std::string& col) {
  return MakeLiteral({col}, {{Value::Int(1)}});
}

TEST(Dag, ReplaceChildKeepsDetachedSubtreeAliveDuringWalk) {
  // root -> distinct -> rowid -> rank -> literal: the distinct's child is
  // replaced, orphaning a three-deep chain whose nodes sit after the
  // replacement point in topo order. Under ASan the pre-fix code read the
  // freed chain while finishing the walk.
  OpPtr chain = MakeRank(Lit("n"), "r", {"n"});
  chain = MakeRowId(chain, "id");
  const Op* victim = chain.get();
  OpPtr root = MakeDistinct(chain);
  chain.reset();  // root now owns the only reference to the chain

  OpPtr replacement = Lit("n");
  size_t n = ReplaceChild(root, victim, replacement);
  EXPECT_EQ(n, 1u);
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0].get(), replacement.get());
  EXPECT_EQ(CountOps(root), 2u);
}

TEST(Dag, ReplaceChildRewritesEverySharedLink) {
  // Diamond: both cross inputs project the same shared node; replacing it
  // must rewrite both links (and survive dropping the shared node's last
  // external reference).
  OpPtr shared = MakeRowId(Lit("n"), "id");
  const Op* victim = shared.get();
  OpPtr root = MakeCross(MakeProject(shared, {{"a", "n"}}),
                         MakeProject(shared, {{"b", "n"}}));
  shared.reset();

  OpPtr replacement = MakeRowId(Lit("n"), "id");
  size_t n = ReplaceChild(root, victim, replacement);
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(root->children[0]->children[0].get(), replacement.get());
  EXPECT_EQ(root->children[1]->children[0].get(), replacement.get());
}

TEST(Dag, TopoOrderVisitsParentsBeforeChildren) {
  OpPtr leaf = Lit("n");
  OpPtr mid = MakeDistinct(leaf);
  OpPtr root = MakeRowId(mid, "id");
  std::vector<Op*> order = TopoOrder(root);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], root.get());
  EXPECT_EQ(order[2], leaf.get());
}

TEST(Dag, ParentMapCountsEverySharedLink) {
  OpPtr shared = Lit("n");
  OpPtr root = MakeCross(MakeProject(shared, {{"a", "n"}}),
                         MakeProject(shared, {{"b", "n"}}));
  ParentMap map = BuildParentMap(root);
  EXPECT_EQ(map.NumParents(shared.get()), 2u);
  EXPECT_EQ(map.NumParents(root.get()), 0u);
}

TEST(Dag, ClonePreservesSharing) {
  OpPtr shared = Lit("n");
  OpPtr root = MakeCross(MakeProject(shared, {{"a", "n"}}),
                         MakeProject(shared, {{"b", "n"}}));
  OpPtr copy = ClonePlan(root);
  EXPECT_NE(copy.get(), root.get());
  EXPECT_EQ(CountOps(copy), CountOps(root));
  // The shared literal must stay shared in the clone.
  EXPECT_EQ(copy->children[0]->children[0].get(),
            copy->children[1]->children[0].get());
}

}  // namespace
}  // namespace xqjg::algebra
