// Algebra construction, schema checking, DAG utilities, printer.
#include <gtest/gtest.h>

#include "src/algebra/dag.h"
#include "src/algebra/operators.h"
#include "src/algebra/printer.h"

namespace xqjg::algebra {
namespace {

OpPtr Lit(std::vector<std::string> cols) {
  std::vector<Value> row;
  for (size_t i = 0; i < cols.size(); ++i) {
    row.push_back(Value::Int(static_cast<int64_t>(i)));
  }
  return MakeLiteral(std::move(cols), {row});
}

TEST(Operators, ProjectRenamesAndValidates) {
  OpPtr base = Lit({"a", "b"});
  OpPtr proj = MakeProject(base, {{"x", "a"}, {"y", "b"}, {"z", "a"}});
  EXPECT_EQ(proj->schema, (std::vector<std::string>{"x", "y", "z"}));
  // missing source column is rejected by RecomputeSchema
  Op bad = *proj;
  bad.proj = {{"x", "nope"}};
  EXPECT_FALSE(RecomputeSchema(&bad));
  // duplicate output names are rejected
  bad.proj = {{"x", "a"}, {"x", "b"}};
  EXPECT_FALSE(RecomputeSchema(&bad));
}

TEST(Operators, JoinRequiresDisjointSchemas) {
  OpPtr l = Lit({"a", "b"});
  OpPtr r = Lit({"c", "d"});
  OpPtr join = MakeJoin(l, r, Predicate::Single(Term::Col("a"), CmpOp::kEq,
                                                Term::Col("c")));
  EXPECT_EQ(join->schema.size(), 4u);
  Op bad = *join;
  bad.children = {Lit({"a"}), Lit({"a"})};
  EXPECT_FALSE(RecomputeSchema(&bad));
}

TEST(Operators, AttachRankRowIdExtendSchema) {
  OpPtr base = Lit({"a"});
  OpPtr attach = MakeAttach(base, "c", Value::Int(7));
  OpPtr rowid = MakeRowId(attach, "r");
  OpPtr rank = MakeRank(rowid, "k", {"a", "r"});
  EXPECT_EQ(rank->schema, (std::vector<std::string>{"a", "c", "r", "k"}));
  // attach of an existing column is rejected
  Op bad = *attach;
  bad.col = "a";
  EXPECT_FALSE(RecomputeSchema(&bad));
}

TEST(Operators, SerializeNeedsNamedColumns) {
  OpPtr base = Lit({"p", "i"});
  OpPtr root = MakeSerialize(base, "p", "i");
  EXPECT_EQ(root->order[0], "p");
  EXPECT_EQ(root->col, "i");
  Op bad = *root;
  bad.order = {"missing"};
  EXPECT_FALSE(RecomputeSchema(&bad));
}

TEST(Predicate, TermToStringAndCols) {
  Predicate p;
  p.And(Term::Col("cpre"), CmpOp::kLt, Term::Col("pre"));
  p.And(Term::Col("pre"), CmpOp::kLe, Term::ColSum("cpre", "csize"));
  p.And(Term::ColPlus("clevel", 1), CmpOp::kEq, Term::Col("level"));
  EXPECT_EQ(p.ToString(),
            "cpre < pre AND pre <= cpre + csize AND clevel + 1 = level");
  EXPECT_EQ(p.Cols(),
            (std::set<std::string>{"cpre", "pre", "csize", "clevel",
                                   "level"}));
}

TEST(Predicate, FlipCmpOp) {
  EXPECT_EQ(FlipCmpOp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(FlipCmpOp(CmpOp::kLe), CmpOp::kGe);
  EXPECT_EQ(FlipCmpOp(CmpOp::kEq), CmpOp::kEq);
  EXPECT_EQ(FlipCmpOp(CmpOp::kNe), CmpOp::kNe);
}

TEST(Dag, OrdersAndCounts) {
  OpPtr doc = MakeDocTable();
  OpPtr s1 = MakeSelect(doc, Predicate::Single(Term::Col("kind"), CmpOp::kEq,
                                               Term::Const(Value::Int(1))));
  OpPtr p1 = MakeProject(s1, {{"x", "pre"}});
  OpPtr p2 = MakeProject(doc, {{"y", "pre"}});  // doc shared
  OpPtr join = MakeJoin(p1, p2, Predicate::Single(Term::Col("x"), CmpOp::kEq,
                                                  Term::Col("y")));
  EXPECT_EQ(CountOps(join), 5u);  // doc counted once
  EXPECT_EQ(CountOps(join, OpKind::kProject), 2u);
  auto topo = TopoOrder(join);
  EXPECT_EQ(topo.front(), join.get());
  // children after parents
  auto pos = [&](const Op* op) {
    return std::find(topo.begin(), topo.end(), op) - topo.begin();
  };
  EXPECT_LT(pos(join.get()), pos(p1.get()));
  EXPECT_LT(pos(p1.get()), pos(s1.get()));
  EXPECT_LT(pos(s1.get()), pos(doc.get()));
}

TEST(Dag, ReachabilityAndReplace) {
  OpPtr doc = MakeDocTable();
  OpPtr sel = MakeSelect(doc, Predicate::True());
  OpPtr proj = MakeProject(sel, {{"p", "pre"}});
  EXPECT_TRUE(Reaches(proj.get(), doc.get()));
  EXPECT_FALSE(Reaches(doc.get(), proj.get()));
  // replace sel by doc directly
  size_t n = ReplaceChild(proj, sel.get(), doc);
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(proj->children[0].get(), doc.get());
}

TEST(Dag, ClonePreservesSharing) {
  OpPtr doc = MakeDocTable();
  OpPtr p1 = MakeProject(doc, {{"a", "pre"}});
  OpPtr p2 = MakeProject(doc, {{"b", "pre"}});
  OpPtr join = MakeJoin(p1, p2, Predicate::Single(Term::Col("a"), CmpOp::kEq,
                                                  Term::Col("b")));
  OpPtr clone = ClonePlan(join);
  EXPECT_NE(clone.get(), join.get());
  EXPECT_EQ(CountOps(clone), CountOps(join));
  // the shared doc leaf stays shared in the clone
  EXPECT_EQ(clone->children[0]->children[0].get(),
            clone->children[1]->children[0].get());
  // and is distinct from the original's leaf
  EXPECT_NE(clone->children[0]->children[0].get(), doc.get());
}

TEST(Printer, MarksSharedNodes) {
  OpPtr doc = MakeDocTable();
  OpPtr join = MakeJoin(MakeProject(doc, {{"a", "pre"}}),
                        MakeProject(doc, {{"b", "pre"}}),
                        Predicate::Single(Term::Col("a"), CmpOp::kEq,
                                          Term::Col("b")));
  std::string printed = PrintPlan(join);
  EXPECT_NE(printed.find("^ref"), std::string::npos);
  std::string dot = PlanToDot(join);
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(OperatorCensus(join).find("doc:1"), std::string::npos);
}

}  // namespace
}  // namespace xqjg::algebra
