// Negative tests for the static plan verifier (src/algebra/validate.h).
//
// Each test hand-corrupts a well-formed DAG — the Make* constructors
// refuse to build broken plans, so corruption happens by mutating the
// public Op fields after construction — and asserts that ValidatePlan
// reports the specific invariant class the corruption violates. This
// pins the verifier's diagnostic vocabulary: a refactor that stops
// detecting one of these breakages fails here, not three stages later
// in a differential fuzz run.
#include "src/algebra/validate.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/algebra/operators.h"
#include "src/algebra/predicate.h"

namespace xqjg::algebra {
namespace {

using ::testing::AssertionFailure;
using ::testing::AssertionResult;
using ::testing::AssertionSuccess;

/// A small well-formed plan: serialize(rank(select(doc))) with the rank
/// attaching a pos column ordered by pre.
OpPtr WellFormedPlan() {
  OpPtr doc = MakeDocTable();
  OpPtr sel = MakeSelect(
      doc, Predicate::Single(Term::Col("kind"), CmpOp::kEq,
                             Term::Const(Value::Int(1))));
  OpPtr rank = MakeRank(sel, "pos", {"pre"});
  return MakeSerialize(rank, "pos", "pre");
}

/// True iff some reported error carries `invariant`; on failure, lists
/// what was reported instead.
AssertionResult Reports(const std::vector<ValidationError>& errors,
                        const std::string& invariant) {
  for (const ValidationError& err : errors) {
    if (err.invariant == invariant) return AssertionSuccess();
  }
  auto failure = AssertionFailure()
                 << "no error with invariant '" << invariant << "'; got "
                 << errors.size() << " error(s)";
  for (const ValidationError& err : errors) {
    failure << "\n  " << err.ToString();
  }
  return failure;
}

const ValidationError* FindError(const std::vector<ValidationError>& errors,
                                 const std::string& invariant) {
  for (const ValidationError& err : errors) {
    if (err.invariant == invariant) return &err;
  }
  return nullptr;
}

TEST(ValidateTest, WellFormedPlanHasNoErrors) {
  auto errors = ValidatePlan(WellFormedPlan(), "test");
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

TEST(ValidateTest, NullRootIsDagStructure) {
  auto errors = ValidatePlan(nullptr, "test");
  ASSERT_TRUE(Reports(errors, "dag-structure"));
  EXPECT_EQ(errors.front().op_id, -1);
}

// --- acyclic ---------------------------------------------------------

TEST(ValidateTest, CyclicShareIsRejected) {
  OpPtr root = WellFormedPlan();
  // Close a cycle: the select (two levels down) gets the rank node (its
  // parent) as its child. shared_ptr keeps both alive; a traversal that
  // does not track the stack would recurse forever.
  OpPtr rank = root->children[0];
  OpPtr sel = rank->children[0];
  sel->children[0] = rank;
  auto errors = ValidatePlan(root, "test");
  ASSERT_TRUE(Reports(errors, "acyclic"));
  // The diagnostic names the edge that closes the cycle.
  EXPECT_NE(FindError(errors, "acyclic")->detail.find("closes a cycle"),
            std::string::npos);
}

TEST(ValidateTest, DiamondShareIsNotACycle) {
  // Sharing without a back edge is legal (the doc table leaf is shared
  // by design): cross(select(doc), project(doc)).
  OpPtr doc = MakeDocTable();
  OpPtr left = MakeProject(doc, {{"l_pre", "pre"}});
  OpPtr right = MakeProject(doc, {{"r_pre", "pre"}});
  OpPtr cross = MakeCross(left, right);
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(cross, "test", opts);
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

// --- dag-structure ---------------------------------------------------

TEST(ValidateTest, WrongArityIsDagStructure) {
  OpPtr root = WellFormedPlan();
  OpPtr rank = root->children[0];
  rank->children.clear();  // rank is unary
  auto errors = ValidatePlan(root, "test");
  EXPECT_TRUE(Reports(errors, "dag-structure"));
}

TEST(ValidateTest, NullChildIsDagStructure) {
  OpPtr root = WellFormedPlan();
  root->children[0]->children[0] = nullptr;
  auto errors = ValidatePlan(root, "test");
  ASSERT_TRUE(Reports(errors, "dag-structure"));
  EXPECT_NE(FindError(errors, "dag-structure")->detail.find("null child"),
            std::string::npos);
}

TEST(ValidateTest, SerializeBelowRootIsDagStructure) {
  OpPtr inner = WellFormedPlan();  // serialize root
  OpPtr outer = MakeDistinct(inner);
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(outer, "test", opts);
  ASSERT_TRUE(Reports(errors, "dag-structure"));
  EXPECT_NE(
      FindError(errors, "dag-structure")->detail.find("serialize below"),
      std::string::npos);
}

TEST(ValidateTest, NonSerializeRootFlaggedWhenExpected) {
  OpPtr doc = MakeDocTable();
  auto errors = ValidatePlan(doc, "test");  // default expects serialize
  EXPECT_TRUE(Reports(errors, "dag-structure"));
}

// --- column-ref ------------------------------------------------------

TEST(ValidateTest, DanglingPredicateColumnIsColumnRef) {
  OpPtr root = WellFormedPlan();
  OpPtr sel = root->children[0]->children[0];
  // Point the select's predicate at a column no child produces — the
  // classic broken-rewrite shape (rename pushed past a use).
  sel->pred.conjuncts[0].lhs = Term::Col("no_such_col");
  auto errors = ValidatePlan(root, "test");
  ASSERT_TRUE(Reports(errors, "column-ref"));
  EXPECT_NE(FindError(errors, "column-ref")->detail.find("no_such_col"),
            std::string::npos);
}

TEST(ValidateTest, DanglingRankOrderIsColumnRef) {
  OpPtr root = WellFormedPlan();
  OpPtr rank = root->children[0];
  rank->order = {"vanished"};
  auto errors = ValidatePlan(root, "test");
  EXPECT_TRUE(Reports(errors, "column-ref"));
}

TEST(ValidateTest, DanglingSerializeItemIsColumnRef) {
  OpPtr root = WellFormedPlan();
  root->col = "gone";  // serialize item column
  auto errors = ValidatePlan(root, "test");
  EXPECT_TRUE(Reports(errors, "column-ref"));
}

TEST(ValidateTest, DanglingProjectionInputIsColumnRef) {
  OpPtr doc = MakeDocTable();
  OpPtr proj = MakeProject(doc, {{"out", "pre"}});
  proj->proj[0].second = "missing";
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(proj, "test", opts);
  EXPECT_TRUE(Reports(errors, "column-ref"));
}

// --- schema-unique ---------------------------------------------------

TEST(ValidateTest, DuplicateSchemaColumnIsSchemaUnique) {
  OpPtr doc = MakeDocTable();
  OpPtr proj = MakeProject(doc, {{"a", "pre"}, {"b", "size"}});
  proj->proj[1].first = "a";  // two outputs named 'a'
  proj->schema = {"a", "a"};
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(proj, "test", opts);
  EXPECT_TRUE(Reports(errors, "schema-unique"));
}

TEST(ValidateTest, OverlappingJoinInputsAreSchemaUnique) {
  // Both join inputs produce the doc columns — every consumed column now
  // has two producers, so the join output is ambiguous.
  OpPtr cross = MakeCross(MakeDocTable(), MakeDocTable());
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(cross, "test", opts);
  EXPECT_TRUE(Reports(errors, "schema-unique"));
}

// --- schema-arith ----------------------------------------------------

TEST(ValidateTest, StaleSchemaIsSchemaArith) {
  OpPtr root = WellFormedPlan();
  OpPtr sel = root->children[0]->children[0];
  // A rewrite renamed the child's outputs but forgot to refresh this
  // node's stored schema.
  sel->schema.push_back("stale_extra");
  auto errors = ValidatePlan(root, "test");
  ASSERT_TRUE(Reports(errors, "schema-arith"));
  EXPECT_NE(FindError(errors, "schema-arith")->detail.find("stale_extra"),
            std::string::npos);
}

TEST(ValidateTest, AttachedColumnCollisionIsSchemaArith) {
  OpPtr doc = MakeDocTable();
  OpPtr attach = MakeAttach(doc, "mark", Value::Int(7));
  attach->col = "pre";  // collides with an input column
  attach->schema = doc->schema;
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(attach, "test", opts);
  EXPECT_TRUE(Reports(errors, "schema-arith"));
}

// --- literal-shape ---------------------------------------------------

TEST(ValidateTest, RaggedLiteralRowIsLiteralShape) {
  OpPtr lit = MakeLiteral({"iter", "item"},
                          {{Value::Int(1), Value::Int(10)}});
  lit->rows.push_back({Value::Int(2)});  // 1 cell, 2-column schema
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(lit, "test", opts);
  ASSERT_TRUE(Reports(errors, "literal-shape"));
  EXPECT_NE(FindError(errors, "literal-shape")->detail.find("1 cells"),
            std::string::npos);
}

// --- param-slot ------------------------------------------------------

TEST(ValidateTest, UnboundParamSlotIsParamSlot) {
  OpPtr doc = MakeDocTable();
  OpPtr sel = MakeSelect(
      doc, Predicate::Single(Term::Col("value"), CmpOp::kEq,
                             Term::Param(3, "x")));
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  opts.num_params = 1;  // slot 3 is out of range
  auto errors = ValidatePlan(sel, "test", opts);
  ASSERT_TRUE(Reports(errors, "param-slot"));
  EXPECT_NE(FindError(errors, "param-slot")->detail.find("slot 3"),
            std::string::npos);
}

TEST(ValidateTest, NamelessParamMarkerIsParamSlot) {
  OpPtr doc = MakeDocTable();
  OpPtr sel = MakeSelect(
      doc, Predicate::Single(Term::Col("value"), CmpOp::kEq,
                             Term::Param(0, "x")));
  sel->pred.conjuncts[0].rhs.param_name.clear();
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  auto errors = ValidatePlan(sel, "test", opts);
  EXPECT_TRUE(Reports(errors, "param-slot"));
}

TEST(ValidateTest, ParamsUnknownSkipsUpperBoundCheck) {
  OpPtr doc = MakeDocTable();
  OpPtr sel = MakeSelect(
      doc, Predicate::Single(Term::Col("value"), CmpOp::kEq,
                             Term::Param(3, "x")));
  ValidateOptions opts;
  opts.expect_serialize_root = false;
  opts.num_params = kParamsUnknown;  // mid-rewrite: count out of scope
  auto errors = ValidatePlan(sel, "test", opts);
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

// --- diagnostics -----------------------------------------------------

TEST(ValidateTest, ErrorNamesStageOperatorAndInvariant) {
  OpPtr root = WellFormedPlan();
  root->children[0]->children[0]->pred.conjuncts[0].lhs =
      Term::Col("no_such_col");
  Status st = Validate(root, "isolate");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("[stage=isolate]"), std::string::npos);
  EXPECT_NE(st.ToString().find("[invariant=column-ref]"),
            std::string::npos);
  EXPECT_NE(st.ToString().find("plan excerpt:"), std::string::npos);
}

TEST(ValidateTest, CycleExcerptTerminates) {
  // The excerpt printer must not recurse forever on the very plans the
  // acyclic check exists for.
  OpPtr root = WellFormedPlan();
  OpPtr rank = root->children[0];
  rank->children[0]->children[0] = rank;
  auto errors = ValidatePlan(root, "test");
  ASSERT_TRUE(Reports(errors, "acyclic"));
  EXPECT_LT(FindError(errors, "acyclic")->excerpt.size(), 4096u);
}

}  // namespace
}  // namespace xqjg::algebra
