// Pipelined cursor delivery: O(batch) retained state and fetch-time
// accounting.
//
// Execute on the columnar lanes opens a live SequenceStream instead of
// materializing the result: the expensive work (through the final sort
// breaker) happens in Prime, and the drain — run merge, item pulls,
// serialization — happens batch by batch inside FetchNext. Two contracts
// are pinned here over a result big enough to matter (100k items):
//
//   * an open, undrained cursor retains tracked memory proportional to
//     the budget/batch, not to the result — compared directly against
//     the materializing row lane's cursor over the same query;
//   * a fetch that times out still accrues its wall time into
//     stats().fetch_seconds (regression: the old FetchNext added the
//     elapsed time only on the success path, so timed-out fetches did
//     invisible work).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/api/processor.h"
#include "src/engine/exec_options.h"

namespace xqjg {
namespace {

constexpr int64_t kBigRows = 100000;
constexpr int64_t kMidRows = 20000;

std::string FlatDoc(int64_t n) {
  std::string xml = "<root>";
  for (int64_t i = 0; i < n; ++i) {
    xml += "<x>";
    xml += std::to_string(i);
    xml += "</x>";
  }
  xml += "</root>";
  return xml;
}

class CursorStreamTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    processor_ = new api::XQueryProcessor();
    ASSERT_TRUE(processor_->LoadDocument("big.xml", FlatDoc(kBigRows)).ok());
    ASSERT_TRUE(processor_->LoadDocument("mid.xml", FlatDoc(kMidRows)).ok());
  }
  static void TearDownTestSuite() {
    delete processor_;
    processor_ = nullptr;
  }

  static Result<std::shared_ptr<const api::PreparedQuery>> PrepareStacked(
      const std::string& doc) {
    api::PrepareOptions prep;
    prep.mode = api::Mode::kStacked;
    prep.context_document = doc;
    return processor_->Prepare("doc(\"" + doc + "\")//x", prep);
  }

  static api::XQueryProcessor* processor_;
};

api::XQueryProcessor* CursorStreamTest::processor_ = nullptr;

TEST_F(CursorStreamTest, OpenCursorRetainsBatchNotResult) {
  auto pq = PrepareStacked("big.xml");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  // The materializing row lane is both the items oracle and the memory
  // baseline: its cursor retains the entire result sequence.
  api::ExecuteOptions row;
  row.use_columnar = false;
  auto oracle = processor_->Execute(pq.value(), row);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_TRUE(oracle.value()->Prime().ok());
  const int64_t materialized_retained =
      oracle.value()->retained_memory_bytes();
  EXPECT_GE(materialized_retained, kBigRows * 8);
  auto oracle_items = oracle.value()->FetchAll();
  ASSERT_TRUE(oracle_items.ok()) << oracle_items.status().ToString();
  ASSERT_EQ(static_cast<int64_t>(oracle_items.value().size()), kBigRows);

  api::ExecuteOptions exec;
  exec.use_columnar = true;
  exec.limits.max_memory_bytes = 128 * 1024;
  auto cursor = processor_->Execute(pq.value(), exec);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  ASSERT_TRUE(cursor.value()->Prime().ok());
  // The stacked lane is primed through its final breaker, so cardinality
  // is known before the first fetch…
  EXPECT_EQ(cursor.value()->stats().rows_total, kBigRows);
  // …and the breaker actually went external at this budget: the drain
  // below exercises the run merge, not a buffered fast path.
  ASSERT_GT(cursor.value()->stats().engine.spill_events, 0);

  // O(batch), enforced against the baseline and in absolute terms: far
  // below the 800 KB the materialized lane retains for the same result.
  const int64_t bound = kBigRows * 8 / 2;
  EXPECT_LT(cursor.value()->retained_memory_bytes(), bound);
  EXPECT_LT(cursor.value()->retained_memory_bytes(), materialized_retained);

  std::vector<std::string> drained;
  int64_t high_water = 0;
  while (!cursor.value()->exhausted()) {
    auto batch = cursor.value()->FetchNext(1000);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch.value().empty()) break;
    for (auto& item : batch.value()) drained.push_back(std::move(item));
    high_water =
        std::max(high_water, cursor.value()->retained_memory_bytes());
  }
  EXPECT_LT(high_water, bound) << "retained state grew while draining";
  EXPECT_EQ(drained, oracle_items.value());
  EXPECT_EQ(cursor.value()->stats().rows_fetched, kBigRows);
  EXPECT_TRUE(cursor.value()->exhausted());
}

TEST_F(CursorStreamTest, TimedOutFetchStillAccruesFetchSeconds) {
  auto pq = PrepareStacked("mid.xml");
  ASSERT_TRUE(pq.ok()) << pq.status().ToString();

  // The execution deadline is absolute from Execute. Prime comfortably
  // beats it; sleeping past it then asking one fetch to pull the whole
  // 20k-row result sends >4096 pulls through the spilled run merge —
  // whose per-row Tick is what notices the expired deadline (the
  // in-memory path never ticks, hence the spill-forcing budget).
  api::ExecuteOptions exec;
  exec.use_columnar = true;
  exec.limits.max_memory_bytes = 64 * 1024;
  exec.limits.timeout_seconds = 2.0;
  auto cursor = processor_->Execute(pq.value(), exec);
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  ASSERT_TRUE(cursor.value()->Prime().ok());
  ASSERT_GT(cursor.value()->stats().engine.spill_events, 0)
      << "budget did not force a spill; the pull path would not tick";

  std::this_thread::sleep_for(std::chrono::milliseconds(2500));
  auto batch = cursor.value()->FetchNext(static_cast<size_t>(kMidRows));
  ASSERT_FALSE(batch.ok()) << "expected the expired deadline to surface";
  EXPECT_EQ(batch.status().code(), StatusCode::kTimeout)
      << batch.status().ToString();
  // The bugfix under test: the elapsed time of the failed fetch is in
  // fetch_seconds (the old scope lost it on every error return).
  EXPECT_GT(cursor.value()->stats().fetch_seconds, 0.0);
  EXPECT_EQ(cursor.value()->stats().rows_fetched, 0);
}

}  // namespace
}  // namespace xqjg
