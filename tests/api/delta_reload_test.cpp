// Delta-reload / corpus-append pinning suite for the shared document
// block: replacing one URI must leave every OTHER document's storage
// untouched — dictionaries pointer-identical, untouched column runs
// byte-identical (shifted, not rebuilt, when they sit after the replaced
// run), native DOM fragments pointer-identical across snapshots, cached
// plans on other documents served pointer-identically — while plans on
// the replaced document go stale and a cursor pinned before the reload
// drains bit-identically against its old snapshot.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/api/processor.h"
#include "src/xml/doc_block.h"

namespace xqjg::api {
namespace {

using xml::DocBlock;
using xml::DocRun;

// Three documents over one shared tag/value alphabet, so a reload that
// reuses the alphabet must not clone any dictionary.
constexpr const char* kDocA = "<r><a id=\"n0\">1</a><b>2</b></r>";
constexpr const char* kDocB = "<r><a>3</a><c>4</c></r>";
constexpr const char* kDocC = "<r><b>5</b><c>6</c></r>";
// Replacement for b.xml: different row count (delta != 0), but every
// tag and value already exists in the corpus alphabet.
constexpr const char* kDocB2 = "<r><a>1</a><a>2</a><c>5</c></r>";
// Appended fourth document, again alphabet-only.
constexpr const char* kDocD = "<r><c>3</c><a>6</a></r>";

class DeltaReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(processor_.LoadDocument("a.xml", kDocA).ok());
    ASSERT_TRUE(processor_.LoadDocument("b.xml", kDocB).ok());
    ASSERT_TRUE(processor_.LoadDocument("c.xml", kDocC).ok());
  }

  /// Forces the shared block + relational database of the current
  /// snapshot and returns the snapshot.
  std::shared_ptr<const CatalogSnapshot> Materialized() {
    auto snap = processor_.snapshot();
    EXPECT_TRUE(snap->doc_table()->block() != nullptr);
    EXPECT_TRUE(snap->relational_db() != nullptr);
    return snap;
  }

  XQueryProcessor processor_;
};

TEST_F(DeltaReloadTest, ReloadKeepsOtherRunsAndDictionariesIdentical) {
  auto before = Materialized();
  const auto old_block = before->doc_table()->block();
  const DocRun* old_a = old_block->FindRun("a.xml");
  const DocRun* old_b = old_block->FindRun("b.xml");
  const DocRun* old_c = old_block->FindRun("c.xml");
  ASSERT_TRUE(old_a && old_b && old_c);

  ASSERT_TRUE(processor_.LoadDocument("b.xml", kDocB2).ok());
  auto after = Materialized();
  const auto new_block = after->doc_table()->block();
  ASSERT_NE(new_block.get(), old_block.get());
  const DocRun* new_b = new_block->FindRun("b.xml");
  ASSERT_TRUE(new_b != nullptr);
  const int64_t delta = new_b->rows - old_b->rows;
  EXPECT_NE(delta, 0);  // the fixture replaces 5 rows with 7
  EXPECT_EQ(new_block->row_count(), old_block->row_count() + delta);

  // Dictionaries: the replacement document stays inside the corpus
  // alphabet, so name and value dictionaries are POINTER-identical (no
  // copy-on-write fired anywhere in the splice).
  EXPECT_EQ(new_block->column(DocBlock::kName).dict_ptr().get(),
            old_block->column(DocBlock::kName).dict_ptr().get());
  EXPECT_EQ(new_block->column(DocBlock::kValue).dict_ptr().get(),
            old_block->column(DocBlock::kValue).dict_ptr().get());

  // a.xml sits before the replaced run: its rows copy verbatim — same
  // base, byte-identical structural values and dictionary codes.
  const DocRun* new_a = new_block->FindRun("a.xml");
  ASSERT_TRUE(new_a != nullptr);
  EXPECT_EQ(new_a->base, old_a->base);
  EXPECT_EQ(new_a->rows, old_a->rows);
  for (int64_t i = 0; i < old_a->rows; ++i) {
    const auto o = static_cast<size_t>(old_a->base + i);
    const auto m = static_cast<size_t>(new_a->base + i);
    EXPECT_EQ(new_block->column(DocBlock::kSizeCol).ints()[m],
              old_block->column(DocBlock::kSizeCol).ints()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kLevel).ints()[m],
              old_block->column(DocBlock::kLevel).ints()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kParent).ints()[m],
              old_block->column(DocBlock::kParent).ints()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kPss).ints()[m],
              old_block->column(DocBlock::kPss).ints()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kName).dict_codes()[m],
              old_block->column(DocBlock::kName).dict_codes()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kValue).dict_codes()[m],
              old_block->column(DocBlock::kValue).dict_codes()[o]);
  }

  // c.xml sits after it: base shifts by the delta, size/level/kind and
  // the dictionary codes stay byte-identical, and the pre-valued columns
  // shift by exactly the delta.
  const DocRun* new_c = new_block->FindRun("c.xml");
  ASSERT_TRUE(new_c != nullptr);
  EXPECT_EQ(new_c->base, old_c->base + delta);
  EXPECT_EQ(new_c->rows, old_c->rows);
  for (int64_t i = 0; i < old_c->rows; ++i) {
    const auto o = static_cast<size_t>(old_c->base + i);
    const auto m = static_cast<size_t>(new_c->base + i);
    EXPECT_EQ(new_block->column(DocBlock::kSizeCol).ints()[m],
              old_block->column(DocBlock::kSizeCol).ints()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kLevel).ints()[m],
              old_block->column(DocBlock::kLevel).ints()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kKind).ints()[m],
              old_block->column(DocBlock::kKind).ints()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kName).dict_codes()[m],
              old_block->column(DocBlock::kName).dict_codes()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kValue).dict_codes()[m],
              old_block->column(DocBlock::kValue).dict_codes()[o]);
    EXPECT_EQ(new_block->column(DocBlock::kPss).ints()[m],
              old_block->column(DocBlock::kPss).ints()[o] + delta);
    const int64_t old_parent = old_block->column(DocBlock::kParent).ints()[o];
    const int64_t new_parent = new_block->column(DocBlock::kParent).ints()[m];
    EXPECT_EQ(new_parent, old_parent < 0 ? old_parent : old_parent + delta);
  }

  // Epochs: only the reloaded document's bumped.
  EXPECT_EQ(after->DocEpoch("a.xml"), before->DocEpoch("a.xml"));
  EXPECT_EQ(after->DocEpoch("c.xml"), before->DocEpoch("c.xml"));
  EXPECT_EQ(after->DocEpoch("b.xml"), before->DocEpoch("b.xml") + 1);
}

TEST_F(DeltaReloadTest, NativeDomOfOtherDocumentsSharedAcrossReload) {
  auto before = processor_.snapshot();
  // Force a.xml's native DOM on the pre-reload snapshot.
  const auto& old_frags = before->whole_store->Fragments("a.xml");
  ASSERT_EQ(old_frags.size(), 1u);

  ASSERT_TRUE(processor_.LoadDocument("b.xml", kDocB2).ok());
  auto after = processor_.snapshot();
  const auto& new_frags = after->whole_store->Fragments("a.xml");
  ASSERT_EQ(new_frags.size(), 1u);
  // Same XmlDocument object: the store entry (and its built tree) is
  // shared between snapshots; the reload rebuilt only b.xml's entry.
  EXPECT_EQ(new_frags[0], old_frags[0]);
}

TEST_F(DeltaReloadTest, DatabaseAdoptsBlockColumnsWithoutCopying) {
  auto snap = Materialized();
  const auto block = snap->doc_table()->block();
  const auto db = snap->relational_db();
  for (int c = 0; c < DocBlock::kNumCols; ++c) {
    EXPECT_EQ(db->ColumnPtr(c).get(), block->column_ptr(c).get())
        << "engine column " << c;
  }
}

TEST_F(DeltaReloadTest, ReloadEvictsOnlyThatDocumentsPlans) {
  auto plan_a = processor_.Prepare("doc(\"a.xml\")//a");
  auto plan_b = processor_.Prepare("doc(\"b.xml\")//c");
  ASSERT_TRUE(plan_a.ok() && plan_b.ok());

  ASSERT_TRUE(processor_.LoadDocument("b.xml", kDocB2).ok());

  // a.xml's plan survives: the SAME artifact comes back from the cache.
  auto plan_a2 = processor_.Prepare("doc(\"a.xml\")//a");
  ASSERT_TRUE(plan_a2.ok());
  EXPECT_EQ(plan_a2.value().get(), plan_a.value().get());

  // b.xml's plan is stale: Execute rejects it, re-Prepare recompiles.
  auto stale = processor_.Execute(plan_b.value());
  EXPECT_FALSE(stale.ok());
  auto plan_b2 = processor_.Prepare("doc(\"b.xml\")//c");
  ASSERT_TRUE(plan_b2.ok());
  EXPECT_NE(plan_b2.value().get(), plan_b.value().get());
  EXPECT_TRUE(processor_.Execute(plan_b2.value()).ok());
}

TEST_F(DeltaReloadTest, PinnedCursorDrainsOldSnapshotBitIdentically) {
  // Reference result of b.xml BEFORE the reload.
  RunOptions run;
  run.mode = Mode::kNativeWhole;
  auto reference = processor_.Run("doc(\"b.xml\")//c", run);
  ASSERT_TRUE(reference.ok());

  PrepareOptions popts;
  popts.mode = Mode::kStacked;
  auto prepared = processor_.Prepare("doc(\"b.xml\")//c", popts);
  ASSERT_TRUE(prepared.ok());
  ExecuteOptions eopts;
  eopts.use_columnar = true;
  auto cursor = processor_.Execute(prepared.value(), eopts);
  ASSERT_TRUE(cursor.ok());

  // Reload under the open cursor, then drain: the cursor executes
  // against the snapshot it pinned, bit-identical to the old content.
  ASSERT_TRUE(processor_.LoadDocument("b.xml", kDocB2).ok());
  auto items = cursor.value()->FetchAll();
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  EXPECT_EQ(items.value(), reference.value().items);

  // A fresh run sees the new content.
  auto fresh = processor_.Run("doc(\"b.xml\")//c", run);
  ASSERT_TRUE(fresh.ok());
  EXPECT_NE(fresh.value().items, reference.value().items);
}

TEST_F(DeltaReloadTest, AppendKeepsPriorRunsDictionariesAndPlans) {
  auto before = Materialized();
  const auto old_block = before->doc_table()->block();
  auto plan_a = processor_.Prepare("doc(\"a.xml\")//a");
  ASSERT_TRUE(plan_a.ok());

  ASSERT_TRUE(processor_.LoadDocument("d.xml", kDocD).ok());
  auto after = Materialized();
  const auto new_block = after->doc_table()->block();

  // Prior runs: same bases and row counts, in order, plus the new run.
  ASSERT_EQ(new_block->runs().size(), old_block->runs().size() + 1);
  for (size_t r = 0; r < old_block->runs().size(); ++r) {
    EXPECT_EQ(new_block->runs()[r].uri, old_block->runs()[r].uri);
    EXPECT_EQ(new_block->runs()[r].base, old_block->runs()[r].base);
    EXPECT_EQ(new_block->runs()[r].rows, old_block->runs()[r].rows);
  }
  EXPECT_EQ(new_block->runs().back().uri, "d.xml");
  EXPECT_EQ(new_block->runs().back().base, old_block->row_count());

  // d.xml's values stay inside the alphabet: the value dictionary is
  // still the SAME object. The name dictionary necessarily grows — the
  // new URI "d.xml" is a new distinct string (DOC rows carry the URI as
  // their name) — so copy-on-write clones it into a SUPERSET that
  // preserves every existing code: the prior runs' code vectors decode
  // identically without being rewritten.
  EXPECT_EQ(new_block->column(DocBlock::kValue).dict_ptr().get(),
            old_block->column(DocBlock::kValue).dict_ptr().get());
  const auto& old_names = old_block->column(DocBlock::kName).dict().strings;
  const auto& new_names = new_block->column(DocBlock::kName).dict().strings;
  ASSERT_GT(new_names.size(), old_names.size());
  for (size_t i = 0; i < old_names.size(); ++i) {
    EXPECT_EQ(new_names[i], old_names[i]) << "name code " << i;
  }

  // Plans over existing documents survive the append pointer-identically.
  auto plan_a2 = processor_.Prepare("doc(\"a.xml\")//a");
  ASSERT_TRUE(plan_a2.ok());
  EXPECT_EQ(plan_a2.value().get(), plan_a.value().get());

  // And the old snapshot still serves its own (pre-append) storage.
  EXPECT_EQ(before->doc_table()->block().get(), old_block.get());
  for (int c = 0; c < DocBlock::kNumCols; ++c) {
    EXPECT_EQ(before->relational_db()->ColumnPtr(c).get(),
              old_block->column_ptr(c).get());
  }
}

}  // namespace
}  // namespace xqjg::api
