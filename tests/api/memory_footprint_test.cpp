// Memory-footprint regression for the shared document block: after
// forcing every RELATIONAL lane of one corpus — the row-lane DocTable
// view, the engine::Database storage, and a columnar execution — the
// bytes retained across all of them must stay within ~1.15× of ONE
// shared block (pre-refactor, each lane materialized its own typed copy:
// ~3×). The native stores stay lazy when never queried natively, so
// they retain no tree at all.
#include <gtest/gtest.h>

#include <string>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"
#include "src/xml/doc_block.h"

namespace xqjg::api {
namespace {

TEST(MemoryFootprint, CorpusIsStoredOnceAcrossRelationalLanes) {
  data::XmarkOptions xmark;
  xmark.scale = 0.05;  // ~2.5k nodes: big enough to dominate overheads
  XQueryProcessor processor;
  ASSERT_TRUE(processor
                  .LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                XmarkSegmentTags())
                  .ok());

  // Force every relational lane: the row lane's DocTable view and the
  // database (B-trees included), then one columnar and one row execution
  // (whose doc-relation batches view the same block).
  ASSERT_TRUE(processor.CreateRelationalIndexes().ok());
  RunOptions columnar;
  columnar.mode = Mode::kJoinGraph;
  columnar.use_columnar = true;
  columnar.context_document = "auction.xml";
  ASSERT_TRUE(processor.Run("/site/people/person", columnar).ok());
  RunOptions row;
  row.mode = Mode::kStacked;
  row.context_document = "auction.xml";
  ASSERT_TRUE(processor.Run("/site/people/person", row).ok());

  auto snap = processor.snapshot();
  const auto block = snap->doc_table()->block();
  ASSERT_TRUE(block != nullptr);
  const int64_t shared_block = block->ApproxBytes();
  ASSERT_GT(shared_block, 0);

  // The accounting hook dedups columns and dictionaries by pointer, so
  // N lanes viewing one block cost one block.
  const int64_t retained = snap->RetainedStorageBytes();
  EXPECT_LE(retained, shared_block + shared_block * 15 / 100)
      << "retained " << retained << " bytes vs shared block "
      << shared_block << " — a lane is holding its own copy";
  EXPECT_GE(retained, shared_block);  // the block itself is retained

  // Pointer-level proof, not just byte accounting: the database adopted
  // the block's columns.
  const auto db = snap->relational_db();
  for (int c = 0; c < xml::DocBlock::kNumCols; ++c) {
    EXPECT_EQ(db->ColumnPtr(c).get(), block->column_ptr(c).get())
        << "engine column " << c;
  }

  // Purely relational workloads never build the native trees.
  EXPECT_EQ(snap->whole_store->RetainedBytes(), 0);
  EXPECT_EQ(snap->segmented_store->RetainedBytes(), 0);

  // A native execution materializes the whole-document DOM — a genuine
  // second representation — and the accounting reports the increase.
  RunOptions native;
  native.mode = Mode::kNativeWhole;
  native.context_document = "auction.xml";
  ASSERT_TRUE(processor.Run("/site/people/person", native).ok());
  EXPECT_GT(snap->whole_store->RetainedBytes(), 0);
  EXPECT_GT(snap->RetainedStorageBytes(), retained);
}

}  // namespace
}  // namespace xqjg::api
