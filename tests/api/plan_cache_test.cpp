// Plan cache: hits on identical text+options share one artifact, any
// differing prepare-relevant option misses, LRU order governs eviction,
// stats observe all of it, and catalog mutations invalidate with
// per-document granularity — only entries whose touched documents (or
// consulted index set) changed fall out.
#include <gtest/gtest.h>

#include "src/api/processor.h"
#include "tests/testutil/fixtures.h"

namespace xqjg::api {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        processor_.LoadDocument("site.xml", testutil::TinySiteXml()).ok());
    ASSERT_TRUE(
        processor_.LoadDocument("bib.xml", testutil::TinyBibXml()).ok());
    ASSERT_TRUE(processor_.CreateRelationalIndexes().ok());
  }

  PrepareOptions Options() const {
    PrepareOptions options;
    options.context_document = "site.xml";
    return options;
  }

  XQueryProcessor processor_;
  const std::string query_ = "//item[price > 10.0]/name";
};

TEST_F(PlanCacheTest, SameTextAndOptionsHitAndShareTheArtifact) {
  auto first = processor_.Prepare(query_, Options());
  ASSERT_TRUE(first.ok());
  auto second = processor_.Prepare(query_, Options());
  ASSERT_TRUE(second.ok());
  // A hit returns the same immutable artifact, not a recompilation.
  EXPECT_EQ(first.value().get(), second.value().get());
  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(PlanCacheTest, AnyPrepareRelevantOptionMisses) {
  auto base = processor_.Prepare(query_, Options());
  ASSERT_TRUE(base.ok());

  PrepareOptions stacked = Options();
  stacked.mode = Mode::kStacked;
  PrepareOptions syntactic = Options();
  syntactic.syntactic_join_order = true;
  PrepareOptions serialized = Options();
  serialized.explicit_serialization_step = true;
  PrepareOptions other_context = Options();
  other_context.context_document = "bib.xml";

  for (const PrepareOptions& options :
       {stacked, syntactic, serialized, other_context}) {
    auto prepared = processor_.Prepare(query_, options);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    EXPECT_NE(prepared.value().get(), base.value().get());
  }
  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 5);
  EXPECT_EQ(stats.entries, 5u);
}

TEST_F(PlanCacheTest, LruEvictionDropsTheLeastRecentlyUsedEntry) {
  processor_.set_plan_cache_capacity(2);
  auto q1 = processor_.Prepare("//item", Options());
  auto q2 = processor_.Prepare("//item/name", Options());
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  // Touch q1 so q2 becomes least recently used.
  ASSERT_TRUE(processor_.Prepare("//item", Options()).ok());
  // Inserting a third entry evicts q2, not q1.
  ASSERT_TRUE(processor_.Prepare("//item/price", Options()).ok());

  auto q1_again = processor_.Prepare("//item", Options());
  ASSERT_TRUE(q1_again.ok());
  EXPECT_EQ(q1_again.value().get(), q1.value().get());  // survived

  auto q2_again = processor_.Prepare("//item/name", Options());
  ASSERT_TRUE(q2_again.ok());
  EXPECT_NE(q2_again.value().get(), q2.value().get());  // was evicted

  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_GE(stats.evictions, 1);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_LE(stats.entries, 2u);
}

TEST_F(PlanCacheTest, RunRoutesThroughTheCache) {
  RunOptions options;
  options.context_document = "site.xml";
  auto cold = processor_.Run(query_, options);
  ASSERT_TRUE(cold.ok());
  auto warm = processor_.Run(query_, options);
  ASSERT_TRUE(warm.ok());
  // Bit-identical results through the cache.
  EXPECT_EQ(cold.value().items, warm.value().items);
  EXPECT_EQ(cold.value().sql, warm.value().sql);
  EXPECT_EQ(cold.value().explain, warm.value().explain);
  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  // Row vs columnar execution share one cached plan (executor selection
  // is not prepare-relevant).
  options.use_columnar = true;
  ASSERT_TRUE(processor_.Run(query_, options).ok());
  EXPECT_EQ(processor_.plan_cache_stats().hits, 2);
}

TEST_F(PlanCacheTest, FailedCompilationsAreNotCached) {
  RunOptions options;
  options.context_document = "site.xml";
  ASSERT_FALSE(processor_.Run("//item[", options).ok());  // parse error
  EXPECT_EQ(processor_.plan_cache_stats().entries, 0u);
}

TEST_F(PlanCacheTest, LoadingAnUnrelatedDocumentKeepsPlansCached) {
  auto before = processor_.Prepare(query_, Options());
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(processor_.plan_cache_stats().entries, 1u);
  const uint64_t generation = processor_.catalog_generation();

  // The cached plan touches only site.xml; loading a NEW document must
  // not evict it — re-Prepare returns the pointer-identical artifact.
  ASSERT_TRUE(
      processor_.LoadDocument("more.xml", testutil::TinyBibXml()).ok());
  EXPECT_GT(processor_.catalog_generation(), generation);
  EXPECT_EQ(processor_.plan_cache_stats().entries, 1u);
  auto after = processor_.Prepare(query_, Options());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().get(), before.value().get());
  // And the cached artifact still executes (from its pinned snapshot).
  EXPECT_TRUE(processor_.ExecuteAll(after.value()).ok());
}

TEST_F(PlanCacheTest, ReloadingADocumentEvictsOnlyIntersectingEntries) {
  PrepareOptions site = Options();
  PrepareOptions bib = Options();
  bib.context_document = "bib.xml";
  auto site_plan = processor_.Prepare("//item/name", site);
  auto bib_plan = processor_.Prepare("//book/title", bib);
  // A cross-document join: touches site.xml AND bib.xml.
  auto cross_plan = processor_.Prepare(
      "for $i in doc(\"site.xml\")//item/name, "
      "$t in doc(\"bib.xml\")//book/title "
      "where $i = $t return $i",
      site);
  ASSERT_TRUE(site_plan.ok());
  ASSERT_TRUE(bib_plan.ok());
  ASSERT_TRUE(cross_plan.ok()) << cross_plan.status().ToString();
  EXPECT_EQ(processor_.plan_cache_stats().entries, 3u);

  // Mutating bib.xml evicts the bib plan and the cross-doc join plan;
  // the site-only plan survives pointer-identically.
  ASSERT_TRUE(
      processor_.LoadDocument("bib.xml", testutil::TinyBibXml()).ok());
  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.invalidations, 2);

  auto site_again = processor_.Prepare("//item/name", site);
  ASSERT_TRUE(site_again.ok());
  EXPECT_EQ(site_again.value().get(), site_plan.value().get());

  auto bib_again = processor_.Prepare("//book/title", bib);
  ASSERT_TRUE(bib_again.ok());
  EXPECT_NE(bib_again.value().get(), bib_plan.value().get());
}

TEST_F(PlanCacheTest, IndexDdlEvictsJoinGraphEntriesOnly) {
  PrepareOptions joingraph = Options();
  PrepareOptions stacked = Options();
  stacked.mode = Mode::kStacked;
  PrepareOptions native = Options();
  native.mode = Mode::kNativeWhole;
  auto jg = processor_.Prepare(query_, joingraph);
  auto st = processor_.Prepare(query_, stacked);
  auto nat = processor_.Prepare(query_, native);
  ASSERT_TRUE(jg.ok());
  ASSERT_TRUE(st.ok());
  ASSERT_TRUE(nat.ok());
  EXPECT_EQ(processor_.plan_cache_stats().entries, 3u);

  // Join-graph plans consult the index set during planning; stacked and
  // native plans do not.
  processor_.DropRelationalIndexes();
  EXPECT_EQ(processor_.plan_cache_stats().entries, 2u);
  auto st_again = processor_.Prepare(query_, stacked);
  auto nat_again = processor_.Prepare(query_, native);
  ASSERT_TRUE(st_again.ok());
  ASSERT_TRUE(nat_again.ok());
  EXPECT_EQ(st_again.value().get(), st.value().get());
  EXPECT_EQ(nat_again.value().get(), nat.value().get());
  auto jg_again = processor_.Prepare(query_, joingraph);
  ASSERT_TRUE(jg_again.ok());
  EXPECT_NE(jg_again.value().get(), jg.value().get());
}

TEST_F(PlanCacheTest, UnrelatedIndexDdlKeepsUsedIndexPlansCached) {
  // The over-eviction fix: a join-graph plan records which indexes its
  // physical plan actually probes (PreparedQuery::used_indexes), and
  // index DDL only invalidates it when one of THOSE changed. Creating an
  // additional index the plan never touches keeps the cached artifact
  // pointer-identical and executable.
  auto jg = processor_.Prepare(query_, Options());
  ASSERT_TRUE(jg.ok()) << jg.status().ToString();
  ASSERT_TRUE(jg.value()->has_plan);
  ASSERT_FALSE(jg.value()->used_indexes.empty())
      << "plan probes no indexes; pick a query with an index scan";
  const uint64_t epoch_before = processor_.snapshot()->index_epoch;

  // Index DDL creating an unrelated index the plan does not probe, on
  // top of the existing set. The epoch bumps; the plan's indexes are
  // intact with identical definitions.
  engine::IndexDef unrelated;
  unrelated.name = "zz_unrelated";
  unrelated.key_columns = {"level", "kind"};
  ASSERT_TRUE(processor_.CreateRelationalIndexes({unrelated}).ok());
  EXPECT_NE(processor_.snapshot()->index_epoch, epoch_before);

  auto again = processor_.Prepare(query_, Options());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), jg.value().get());  // survived, not rebuilt
  EXPECT_GE(processor_.plan_cache_stats().hits, 1);
  // And it still executes from its pinned snapshot.
  EXPECT_TRUE(processor_.ExecuteAll(again.value()).ok());

  // Dropping everything DOES touch the plan's probed indexes: evicted.
  processor_.DropRelationalIndexes();
  auto rebuilt = processor_.Prepare(query_, Options());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_NE(rebuilt.value().get(), jg.value().get());
}

TEST_F(PlanCacheTest, CapacityZeroDisablesCaching) {
  processor_.set_plan_cache_capacity(0);
  auto first = processor_.Prepare(query_, Options());
  auto second = processor_.Prepare(query_, Options());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value().get(), second.value().get());
  EXPECT_EQ(processor_.plan_cache_stats().entries, 0u);
}

}  // namespace
}  // namespace xqjg::api
