// Plan cache: hits on identical text+options share one artifact, any
// differing prepare-relevant option misses, LRU order governs eviction,
// stats observe all of it, and every catalog mutation invalidates.
#include <gtest/gtest.h>

#include "src/api/processor.h"
#include "tests/testutil/fixtures.h"

namespace xqjg::api {
namespace {

class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        processor_.LoadDocument("site.xml", testutil::TinySiteXml()).ok());
    ASSERT_TRUE(
        processor_.LoadDocument("bib.xml", testutil::TinyBibXml()).ok());
    ASSERT_TRUE(processor_.CreateRelationalIndexes().ok());
  }

  PrepareOptions Options() const {
    PrepareOptions options;
    options.context_document = "site.xml";
    return options;
  }

  XQueryProcessor processor_;
  const std::string query_ = "//item[price > 10.0]/name";
};

TEST_F(PlanCacheTest, SameTextAndOptionsHitAndShareTheArtifact) {
  auto first = processor_.Prepare(query_, Options());
  ASSERT_TRUE(first.ok());
  auto second = processor_.Prepare(query_, Options());
  ASSERT_TRUE(second.ok());
  // A hit returns the same immutable artifact, not a recompilation.
  EXPECT_EQ(first.value().get(), second.value().get());
  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.entries, 1u);
}

TEST_F(PlanCacheTest, AnyPrepareRelevantOptionMisses) {
  auto base = processor_.Prepare(query_, Options());
  ASSERT_TRUE(base.ok());

  PrepareOptions stacked = Options();
  stacked.mode = Mode::kStacked;
  PrepareOptions syntactic = Options();
  syntactic.syntactic_join_order = true;
  PrepareOptions serialized = Options();
  serialized.explicit_serialization_step = true;
  PrepareOptions other_context = Options();
  other_context.context_document = "bib.xml";

  for (const PrepareOptions& options :
       {stacked, syntactic, serialized, other_context}) {
    auto prepared = processor_.Prepare(query_, options);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    EXPECT_NE(prepared.value().get(), base.value().get());
  }
  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 5);
  EXPECT_EQ(stats.entries, 5u);
}

TEST_F(PlanCacheTest, LruEvictionDropsTheLeastRecentlyUsedEntry) {
  processor_.set_plan_cache_capacity(2);
  auto q1 = processor_.Prepare("//item", Options());
  auto q2 = processor_.Prepare("//item/name", Options());
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  // Touch q1 so q2 becomes least recently used.
  ASSERT_TRUE(processor_.Prepare("//item", Options()).ok());
  // Inserting a third entry evicts q2, not q1.
  ASSERT_TRUE(processor_.Prepare("//item/price", Options()).ok());

  auto q1_again = processor_.Prepare("//item", Options());
  ASSERT_TRUE(q1_again.ok());
  EXPECT_EQ(q1_again.value().get(), q1.value().get());  // survived

  auto q2_again = processor_.Prepare("//item/name", Options());
  ASSERT_TRUE(q2_again.ok());
  EXPECT_NE(q2_again.value().get(), q2.value().get());  // was evicted

  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_GE(stats.evictions, 1);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_LE(stats.entries, 2u);
}

TEST_F(PlanCacheTest, RunRoutesThroughTheCache) {
  RunOptions options;
  options.context_document = "site.xml";
  auto cold = processor_.Run(query_, options);
  ASSERT_TRUE(cold.ok());
  auto warm = processor_.Run(query_, options);
  ASSERT_TRUE(warm.ok());
  // Bit-identical results through the cache.
  EXPECT_EQ(cold.value().items, warm.value().items);
  EXPECT_EQ(cold.value().sql, warm.value().sql);
  EXPECT_EQ(cold.value().explain, warm.value().explain);
  PlanCache::Stats stats = processor_.plan_cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  // Row vs columnar execution share one cached plan (executor selection
  // is not prepare-relevant).
  options.use_columnar = true;
  ASSERT_TRUE(processor_.Run(query_, options).ok());
  EXPECT_EQ(processor_.plan_cache_stats().hits, 2);
}

TEST_F(PlanCacheTest, FailedCompilationsAreNotCached) {
  RunOptions options;
  options.context_document = "site.xml";
  ASSERT_FALSE(processor_.Run("//item[", options).ok());  // parse error
  EXPECT_EQ(processor_.plan_cache_stats().entries, 0u);
}

TEST_F(PlanCacheTest, CatalogMutationsClearTheCacheAndBumpTheGeneration) {
  ASSERT_TRUE(processor_.Prepare(query_, Options()).ok());
  EXPECT_EQ(processor_.plan_cache_stats().entries, 1u);
  const uint64_t generation = processor_.catalog_generation();

  ASSERT_TRUE(
      processor_.LoadDocument("more.xml", testutil::TinyBibXml()).ok());
  EXPECT_EQ(processor_.plan_cache_stats().entries, 0u);
  EXPECT_GT(processor_.catalog_generation(), generation);

  ASSERT_TRUE(processor_.Prepare(query_, Options()).ok());
  processor_.DropRelationalIndexes();
  EXPECT_EQ(processor_.plan_cache_stats().entries, 0u);
}

TEST_F(PlanCacheTest, CapacityZeroDisablesCaching) {
  processor_.set_plan_cache_capacity(0);
  auto first = processor_.Prepare(query_, Options());
  auto second = processor_.Prepare(query_, Options());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_NE(first.value().get(), second.value().get());
  EXPECT_EQ(processor_.plan_cache_stats().entries, 0u);
}

}  // namespace
}  // namespace xqjg::api
