// Concurrent execution: N threads share one immutable PreparedQuery per
// paper query (row and columnar executors alike) and every thread's
// result must equal the single-threaded oracle. This is the suite the CI
// ThreadSanitizer job runs — any shared mutable state in the execution
// layers surfaces here as a data race or a differential mismatch.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"

namespace xqjg::api {
namespace {

constexpr int kThreads = 4;

class PreparedConcurrencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    processor_ = new XQueryProcessor();
    data::XmarkOptions xmark;
    xmark.scale = 0.1;
    ASSERT_TRUE(processor_
                    ->LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                   XmarkSegmentTags())
                    .ok());
    data::DblpOptions dblp;
    dblp.publications = 400;
    ASSERT_TRUE(processor_
                    ->LoadDocument("dblp.xml", data::GenerateDblp(dblp),
                                   DblpSegmentTags())
                    .ok());
    ASSERT_TRUE(processor_->CreateRelationalIndexes().ok());
  }
  static void TearDownTestSuite() {
    delete processor_;
    processor_ = nullptr;
  }

  static XQueryProcessor* processor_;
};

XQueryProcessor* PreparedConcurrencyTest::processor_ = nullptr;

/// Runs `threads` concurrent ExecuteAll calls over one PreparedQuery and
/// returns every thread's items (empty + recorded error on failure).
struct ThreadOutcome {
  std::vector<std::string> items;
  Status status = Status::OK();
};

std::vector<ThreadOutcome> ExecuteConcurrently(
    const XQueryProcessor& processor,
    const std::shared_ptr<const PreparedQuery>& prepared, int threads,
    bool alternate_executors) {
  std::vector<ThreadOutcome> outcomes(static_cast<size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t]() {
      ExecuteOptions options;
      options.limits.timeout_seconds = 120;
      // Odd threads run the columnar executors against even threads'
      // row-at-a-time execution of the very same plan.
      options.use_columnar = alternate_executors && (t % 2 == 1);
      auto result = processor.ExecuteAll(prepared, options);
      if (result.ok()) {
        outcomes[static_cast<size_t>(t)].items =
            std::move(result.value().items);
      } else {
        outcomes[static_cast<size_t>(t)].status = result.status();
      }
    });
  }
  for (auto& thread : pool) thread.join();
  return outcomes;
}

class PaperQueryConcurrency
    : public PreparedConcurrencyTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(PaperQueryConcurrency, ThreadsShareOnePreparedQueryAndAgree) {
  const PaperQuery* query = nullptr;
  for (const auto& q : PaperQueries()) {
    if (q.id == GetParam()) query = &q;
  }
  ASSERT_NE(query, nullptr);

  PrepareOptions prep;
  prep.mode = Mode::kJoinGraph;
  prep.context_document = query->document;
  auto prepared = processor_->Prepare(query->text, prep);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  // Single-threaded oracle, row executor.
  ExecuteOptions oracle_options;
  oracle_options.limits.timeout_seconds = 120;
  auto oracle = processor_->ExecuteAll(prepared.value(), oracle_options);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  auto outcomes = ExecuteConcurrently(*processor_, prepared.value(), kThreads,
                                      /*alternate_executors=*/true);
  for (int t = 0; t < kThreads; ++t) {
    const ThreadOutcome& outcome = outcomes[static_cast<size_t>(t)];
    ASSERT_TRUE(outcome.status.ok())
        << query->id << " thread " << t << ": " << outcome.status.ToString();
    EXPECT_EQ(outcome.items, oracle.value().items)
        << query->id << " thread " << t
        << (t % 2 == 1 ? " (columnar)" : " (row)");
  }
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, PaperQueryConcurrency,
                         ::testing::Values("Q1", "Q2", "Q3", "Q4", "Q5",
                                           "Q6"),
                         [](const ::testing::TestParamInfo<const char*>& pi) {
                           return std::string(pi.param);
                         });

TEST_F(PreparedConcurrencyTest, StackedAndNativeModesExecuteConcurrently) {
  const PaperQuery& q1 = PaperQueries()[0];
  for (Mode mode : {Mode::kStacked, Mode::kNativeWhole}) {
    PrepareOptions prep;
    prep.mode = mode;
    prep.context_document = q1.document;
    auto prepared = processor_->Prepare(q1.text, prep);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    ExecuteOptions oracle_options;
    oracle_options.limits.timeout_seconds = 120;
    auto oracle = processor_->ExecuteAll(prepared.value(), oracle_options);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
    auto outcomes =
        ExecuteConcurrently(*processor_, prepared.value(), kThreads,
                            /*alternate_executors=*/mode == Mode::kStacked);
    for (const ThreadOutcome& outcome : outcomes) {
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      EXPECT_EQ(outcome.items, oracle.value().items) << ModeToString(mode);
    }
  }
}

TEST_F(PreparedConcurrencyTest, WriterMutatesCatalogUnderLiveCursors) {
  // The snapshot-catalog contract under load (run under TSan in CI): a
  // writer thread loads documents, RE-loads one of them, and re-creates
  // the relational index set, while
  //   (a) open cursors over a join-graph plan keep draining — no drain
  //       requirement, no race, results from their pinned snapshot; and
  //   (b) reader threads run full stacked-mode executions end to end —
  //       stacked plans don't consult the index set and don't touch the
  //       writer's documents, so they stay servable throughout.
  // Afterwards the join-graph artifact is correctly stale (the index set
  // changed) and a re-Prepare serves identical results from the new
  // snapshot — "correct results on both snapshots".
  const PaperQuery& q1 = PaperQueries()[0];
  PrepareOptions jg_prep;
  jg_prep.context_document = q1.document;
  auto jg = processor_->Prepare(q1.text, jg_prep);
  ASSERT_TRUE(jg.ok()) << jg.status().ToString();
  PrepareOptions stacked_prep = jg_prep;
  stacked_prep.mode = Mode::kStacked;
  auto stacked = processor_->Prepare(q1.text, stacked_prep);
  ASSERT_TRUE(stacked.ok()) << stacked.status().ToString();
  ExecuteOptions exec;
  exec.limits.timeout_seconds = 120;
  auto oracle = processor_->ExecuteAll(jg.value(), exec);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  // Open the cursors and run their plans BEFORE the writer starts; the
  // streaming drain then races the catalog mutations.
  std::vector<std::unique_ptr<ResultCursor>> cursors;
  for (int t = 0; t < kThreads; ++t) {
    ExecuteOptions options = exec;
    options.use_columnar = (t % 2 == 1);
    auto cursor = processor_->Execute(jg.value(), options);
    ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
    auto first = cursor.value()->FetchNext(1);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ASSERT_EQ(first.value().size(), 1u);
    cursors.push_back(std::move(cursor).value());
  }

  constexpr int kWriterRounds = 6;
  std::vector<ThreadOutcome> outcomes(kThreads);
  Status writer_status = Status::OK();
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      ThreadOutcome& out = outcomes[static_cast<size_t>(t)];
      // Drain the pre-opened join-graph cursor in small batches...
      out.items.push_back(std::string());  // placeholder for batch 1
      while (true) {
        auto batch = cursors[static_cast<size_t>(t)]->FetchNext(16);
        if (!batch.ok()) {
          out.status = batch.status();
          return;
        }
        if (batch.value().empty()) break;
        for (auto& item : batch.value()) out.items.push_back(std::move(item));
      }
      // ...and interleave full stacked executions, which stay servable
      // across every writer mutation.
      for (int round = 0; round < kWriterRounds; ++round) {
        ExecuteOptions options = exec;
        options.use_columnar = (t % 2 == 1);
        auto result = processor_->ExecuteAll(stacked.value(), options);
        if (!result.ok()) {
          out.status = result.status();
          return;
        }
        if (result.value().items != oracle.value().items) {
          out.status = Status::Internal("stacked result diverged");
          return;
        }
      }
    });
  }
  std::thread writer([&]() {
    for (int round = 0; round < kWriterRounds && writer_status.ok();
         ++round) {
      const std::string uri = "scratch-" + std::to_string(round % 2) + ".xml";
      writer_status = processor_->LoadDocument(
          uri, "<scratch><round>" + std::to_string(round) +
                   "</round></scratch>");
      if (writer_status.ok()) {
        writer_status = processor_->CreateRelationalIndexes();
      }
    }
  });
  for (auto& thread : pool) thread.join();
  writer.join();
  ASSERT_TRUE(writer_status.ok()) << writer_status.ToString();
  for (int t = 0; t < kThreads; ++t) {
    ThreadOutcome& outcome = outcomes[static_cast<size_t>(t)];
    ASSERT_TRUE(outcome.status.ok())
        << "thread " << t << ": " << outcome.status.ToString();
    // Items fetched after the pre-writer first batch (placeholder at 0).
    std::vector<std::string> tail(oracle.value().items.begin() + 1,
                                  oracle.value().items.end());
    std::vector<std::string> got(outcome.items.begin() + 1,
                                 outcome.items.end());
    EXPECT_EQ(got, tail) << "thread " << t;
  }

  // The writer's index DDL re-created the SAME definitions each round, so
  // the join-graph artifact stays servable: staleness intersects on the
  // indexes the plan actually probes (definition-identical), not on the
  // epoch alone — the over-eviction fix.
  auto still = processor_->ExecuteAll(jg.value(), exec);
  ASSERT_TRUE(still.ok()) << still.status().ToString();
  EXPECT_EQ(still.value().items, oracle.value().items);

  // Dropping the index set is a REAL change to the plan's probed indexes:
  // now the artifact is stale, and a fresh Prepare against the mutated
  // catalog reproduces the oracle.
  processor_->DropRelationalIndexes();
  auto stale = processor_->Execute(jg.value(), exec);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(processor_->CreateRelationalIndexes().ok());
  auto fresh = processor_->Prepare(q1.text, jg_prep);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  auto fresh_result = processor_->ExecuteAll(fresh.value(), exec);
  ASSERT_TRUE(fresh_result.ok()) << fresh_result.status().ToString();
  EXPECT_EQ(fresh_result.value().items, oracle.value().items);
}

TEST_F(PreparedConcurrencyTest, MultiWorkerExecutionsUnderLiveCatalogMutation) {
  // Morsel parallelism composes with catalog concurrency (run under TSan
  // in CI): N sessions each execute the SAME prepared artifacts with the
  // columnar executors at threads = 8 — so every session fans out its own
  // worker-pool morsels — while a writer loads documents and re-creates
  // the index set. Workers are pinned to the cursor's snapshot, so every
  // execution must reproduce the serial oracle bit-identically.
  const PaperQuery& q1 = PaperQueries()[0];
  PrepareOptions jg_prep;
  jg_prep.context_document = q1.document;
  auto jg = processor_->Prepare(q1.text, jg_prep);
  ASSERT_TRUE(jg.ok()) << jg.status().ToString();
  PrepareOptions stacked_prep = jg_prep;
  stacked_prep.mode = Mode::kStacked;
  auto stacked = processor_->Prepare(q1.text, stacked_prep);
  ASSERT_TRUE(stacked.ok()) << stacked.status().ToString();
  ExecuteOptions serial;
  serial.limits.timeout_seconds = 120;
  auto oracle = processor_->ExecuteAll(jg.value(), serial);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  constexpr int kRounds = 4;
  std::vector<ThreadOutcome> outcomes(kThreads);
  Status writer_status = Status::OK();
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      ThreadOutcome& out = outcomes[static_cast<size_t>(t)];
      const auto& prepared = (t % 2 == 0) ? jg.value() : stacked.value();
      for (int round = 0; round < kRounds; ++round) {
        ExecuteOptions options = serial;
        options.use_columnar = true;
        options.threads = 8;
        auto result = processor_->ExecuteAll(prepared, options);
        if (!result.ok()) {
          out.status = result.status();
          return;
        }
        if (result.value().items != oracle.value().items) {
          out.status = Status::Internal("multi-worker result diverged");
          return;
        }
      }
      out.items = oracle.value().items;
    });
  }
  std::thread writer([&]() {
    for (int round = 0; round < kRounds && writer_status.ok(); ++round) {
      writer_status = processor_->LoadDocument(
          "mw-scratch.xml",
          "<scratch><round>" + std::to_string(round) + "</round></scratch>");
      if (writer_status.ok()) {
        writer_status = processor_->CreateRelationalIndexes();
      }
    }
  });
  for (auto& thread : pool) thread.join();
  writer.join();
  ASSERT_TRUE(writer_status.ok()) << writer_status.ToString();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(outcomes[static_cast<size_t>(t)].status.ok())
        << "thread " << t << ": "
        << outcomes[static_cast<size_t>(t)].status.ToString();
  }
}

TEST_F(PreparedConcurrencyTest, ConcurrentStreamingCursorsStayIndependent) {
  const PaperQuery& q4 = PaperQueries()[3];
  PrepareOptions prep;
  prep.context_document = q4.document;
  auto prepared = processor_->Prepare(q4.text, prep);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto oracle = processor_->ExecuteAll(prepared.value());
  ASSERT_TRUE(oracle.ok());

  std::vector<ThreadOutcome> outcomes(kThreads);
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&, t]() {
      auto cursor = processor_->Execute(prepared.value());
      if (!cursor.ok()) {
        outcomes[static_cast<size_t>(t)].status = cursor.status();
        return;
      }
      // Deliberately small, thread-dependent batch sizes: interleaved
      // FetchNext schedules across threads.
      const size_t batch_size = static_cast<size_t>(t) + 1;
      while (true) {
        auto batch = cursor.value()->FetchNext(batch_size);
        if (!batch.ok()) {
          outcomes[static_cast<size_t>(t)].status = batch.status();
          return;
        }
        if (batch.value().empty()) break;
        for (auto& item : batch.value()) {
          outcomes[static_cast<size_t>(t)].items.push_back(std::move(item));
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  for (const ThreadOutcome& outcome : outcomes) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.items, oracle.value().items);
  }
}

}  // namespace
}  // namespace xqjg::api
