// Prepare/Execute lifecycle: the compiled artifact is immutable and
// reusable, cursors stream in batches, ExecuteAll preserves Run
// semantics, and stale artifacts are rejected after catalog changes.
#include <gtest/gtest.h>

#include <memory>

#include "src/api/processor.h"
#include "tests/testutil/fixtures.h"

namespace xqjg::api {
namespace {

class PreparedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(processor_
                    .LoadDocument("site.xml", testutil::TinySiteXml(),
                                  {"item"})
                    .ok());
    ASSERT_TRUE(processor_.CreateRelationalIndexes().ok());
  }

  XQueryProcessor processor_;
  const std::string query_ = "//item[price > 10.0]/name";
};

TEST_F(PreparedQueryTest, PrepareCapturesCompiledArtifacts) {
  PrepareOptions options;
  options.mode = Mode::kJoinGraph;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const PreparedQuery& pq = *prepared.value();
  EXPECT_EQ(pq.query_text, query_);
  EXPECT_NE(pq.core, nullptr);
  EXPECT_NE(pq.stacked, nullptr);
  EXPECT_NE(pq.isolated, nullptr);
  EXPECT_TRUE(pq.has_plan);
  EXPECT_FALSE(pq.used_fallback);
  EXPECT_NE(pq.graph, nullptr);
  EXPECT_EQ(pq.plan.graph, pq.graph.get());  // plan points into the artifact
  EXPECT_FALSE(pq.sql.empty());
  EXPECT_FALSE(pq.explain.empty());
  EXPECT_GT(pq.diagnostics.ops_stacked, pq.diagnostics.ops_isolated);
  EXPECT_GE(pq.compile_seconds, 0.0);
  EXPECT_EQ(pq.catalog_generation, processor_.catalog_generation());
}

TEST_F(PreparedQueryTest, RunMatchesPrepareExecuteInEveryMode) {
  for (Mode mode : {Mode::kStacked, Mode::kJoinGraph, Mode::kNativeWhole,
                    Mode::kNativeSegmented}) {
    RunOptions run_options;
    run_options.mode = mode;
    run_options.context_document = "site.xml";
    auto via_run = processor_.Run(query_, run_options);
    ASSERT_TRUE(via_run.ok())
        << ModeToString(mode) << ": " << via_run.status().ToString();

    PrepareOptions prep;
    prep.mode = mode;
    prep.context_document = "site.xml";
    auto prepared = processor_.Prepare(query_, prep);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto via_execute = processor_.ExecuteAll(prepared.value());
    ASSERT_TRUE(via_execute.ok()) << via_execute.status().ToString();

    EXPECT_EQ(via_run.value().items, via_execute.value().items)
        << ModeToString(mode);
    EXPECT_EQ(via_run.value().sql, via_execute.value().sql);
    EXPECT_EQ(via_run.value().explain, via_execute.value().explain);
    EXPECT_EQ(via_run.value().used_fallback, via_execute.value().used_fallback);
  }
}

TEST_F(PreparedQueryTest, CursorStreamsInBatches) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto oracle = processor_.ExecuteAll(prepared.value());
  ASSERT_TRUE(oracle.ok());
  ASSERT_GE(oracle.value().result_count(), 2u);

  auto cursor = processor_.Execute(prepared.value());
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  ResultCursor& c = *cursor.value();
  EXPECT_FALSE(c.exhausted());  // plan has not run yet
  EXPECT_EQ(c.stats().rows_total, -1);

  std::vector<std::string> streamed;
  size_t batches = 0;
  while (true) {
    auto batch = c.FetchNext(1);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch.value().empty()) break;
    EXPECT_EQ(batch.value().size(), 1u);
    for (auto& item : batch.value()) streamed.push_back(std::move(item));
    ++batches;
  }
  EXPECT_TRUE(c.exhausted());
  EXPECT_EQ(streamed, oracle.value().items);
  EXPECT_EQ(batches, oracle.value().result_count());
  // One source of truth: cursor counts equal materialized counts.
  EXPECT_EQ(static_cast<size_t>(c.stats().rows_total),
            oracle.value().result_count());
  EXPECT_EQ(static_cast<size_t>(c.stats().rows_fetched),
            oracle.value().result_count());
}

TEST_F(PreparedQueryTest, FetchZeroIsAnErrorAndExhaustionIsSticky) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto cursor = processor_.Execute(prepared.value());
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.value()->FetchNext(0).ok());
  auto all = cursor.value()->FetchAll();
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(cursor.value()->exhausted());
  auto after = cursor.value()->FetchNext(8);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().empty());
}

TEST_F(PreparedQueryTest, ConcurrentCursorsOverOnePreparedQueryAreIndependent) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto c1 = processor_.Execute(prepared.value());
  auto c2 = processor_.Execute(prepared.value());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Interleaved fetches: each cursor keeps its own position.
  auto b1 = c1.value()->FetchNext(1);
  auto b2 = c2.value()->FetchAll();
  auto b1rest = c1.value()->FetchAll();
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(b1rest.ok());
  std::vector<std::string> via_c1 = b1.value();
  for (auto& item : b1rest.value()) via_c1.push_back(std::move(item));
  EXPECT_EQ(via_c1, b2.value());
}

TEST_F(PreparedQueryTest, StaleRejectionIsPerTouchedDocument) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(processor_.Execute(prepared.value()).ok());

  // Loading an UNRELATED document does not stale a site.xml plan: it
  // executes from its pinned snapshot with identical results.
  auto oracle = processor_.ExecuteAll(prepared.value());
  ASSERT_TRUE(oracle.ok());
  ASSERT_TRUE(
      processor_.LoadDocument("other.xml", testutil::TinyBibXml()).ok());
  auto still_valid = processor_.ExecuteAll(prepared.value());
  ASSERT_TRUE(still_valid.ok()) << still_valid.status().ToString();
  EXPECT_EQ(still_valid.value().items, oracle.value().items);

  // Re-loading site.xml ITSELF makes the plan stale.
  ASSERT_TRUE(processor_
                  .LoadDocument("site.xml", testutil::TinySiteXml(),
                                {"item"})
                  .ok());
  auto stale = processor_.Execute(prepared.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);

  // Re-preparing against the new catalog works again.
  auto fresh = processor_.Prepare(query_, options);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(processor_.Execute(fresh.value()).ok());
}

TEST_F(PreparedQueryTest, OutstandingCursorsDrainAcrossCatalogMutations) {
  // A cursor pins the snapshot its PreparedQuery was compiled against:
  // catalog mutations — even a reload of the very document it reads —
  // never invalidate an open cursor. No draining is required before a
  // mutation; the cursor finishes with correct results on its snapshot.
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto oracle = processor_.ExecuteAll(prepared.value());
  ASSERT_TRUE(oracle.ok());
  ASSERT_GE(oracle.value().result_count(), 2u);

  auto unexecuted = processor_.Execute(prepared.value());
  auto midstream = processor_.Execute(prepared.value());
  ASSERT_TRUE(unexecuted.ok());
  ASSERT_TRUE(midstream.ok());
  auto first = midstream.value()->FetchNext(1);
  ASSERT_TRUE(first.ok());

  // Mutate the catalog under both cursors: an unrelated load AND a
  // reload of the touched document itself.
  ASSERT_TRUE(
      processor_.LoadDocument("other.xml", testutil::TinyBibXml()).ok());
  ASSERT_TRUE(processor_
                  .LoadDocument("site.xml",
                                "<site><item><name>changed</name>"
                                "</item></site>")
                  .ok());

  // The mid-stream cursor finishes on the old snapshot.
  auto rest = midstream.value()->FetchAll();
  ASSERT_TRUE(rest.ok()) << rest.status().ToString();
  std::vector<std::string> streamed = first.value();
  for (auto& item : rest.value()) streamed.push_back(std::move(item));
  EXPECT_EQ(streamed, oracle.value().items);

  // The not-yet-executed cursor runs its plan on the old snapshot too.
  auto late = unexecuted.value()->FetchAll();
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_EQ(late.value(), oracle.value().items);

  // New sessions see the new catalog.
  auto fresh = processor_.Prepare("//item/name", options);
  ASSERT_TRUE(fresh.ok());
  auto fresh_result = processor_.ExecuteAll(fresh.value());
  ASSERT_TRUE(fresh_result.ok());
  ASSERT_EQ(fresh_result.value().result_count(), 1u);
  EXPECT_EQ(fresh_result.value().items[0], "<name>changed</name>");
}

TEST_F(PreparedQueryTest, DroppingIndexesInvalidatesPreparedPlans) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok());
  processor_.DropRelationalIndexes();
  auto stale = processor_.Execute(prepared.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PreparedQueryTest, ExecuteLimitsApplyPerExecution) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok());
  for (bool columnar : {false, true}) {
    // The planner executors must honor both DNF budgets per execution.
    ExecuteOptions timeout;
    timeout.use_columnar = columnar;
    timeout.limits.timeout_seconds = 1e-9;
    auto timed = processor_.ExecuteAll(prepared.value(), timeout);
    ASSERT_FALSE(timed.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(timed.status().code(), StatusCode::kTimeout);

    ExecuteOptions rows;
    rows.use_columnar = columnar;
    rows.limits.max_intermediate_rows = 1;
    auto bounded = processor_.ExecuteAll(prepared.value(), rows);
    ASSERT_FALSE(bounded.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(bounded.status().code(), StatusCode::kTimeout);

    // The same artifact still executes unlimited afterwards (budgets are
    // per execution, not baked into the plan).
    ExecuteOptions unlimited;
    unlimited.use_columnar = columnar;
    auto ok = processor_.ExecuteAll(prepared.value(), unlimited);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_GT(ok.value().result_count(), 0u);
  }
}

TEST_F(PreparedQueryTest, NativeModesPrepareWithoutRelationalCompilation) {
  PrepareOptions options;
  options.mode = Mode::kNativeWhole;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item/name", options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_NE(prepared.value()->core, nullptr);
  EXPECT_EQ(prepared.value()->stacked, nullptr);
  EXPECT_FALSE(prepared.value()->has_plan);
  auto result = processor_.ExecuteAll(prepared.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().result_count(), 0u);
}

// ---------------------------------------------------------------------------
// Parameterized prepared statements: `declare variable $x external;` turns
// $x into a marker bound per Execute — one compiled plan, many literals.

class ParameterizedQueryTest : public PreparedQueryTest {
 protected:
  const std::string param_query_ =
      "declare variable $minprice as xs:decimal external; "
      "//item[price > $minprice]/name";

  static Result<RunResult> Bind(XQueryProcessor& processor,
                                const std::shared_ptr<const PreparedQuery>& pq,
                                Value v, bool columnar) {
    ExecuteOptions exec;
    exec.use_columnar = columnar;
    exec.parameters["minprice"] = std::move(v);
    return processor.ExecuteAll(pq, exec);
  }
};

TEST_F(ParameterizedQueryTest, OnePlanServesALiteralFamily) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(param_query_, options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(prepared.value()->has_plan);
  ASSERT_EQ(prepared.value()->parameters.size(), 1u);
  EXPECT_EQ(prepared.value()->parameters[0].name, "minprice");
  EXPECT_TRUE(prepared.value()->parameters[0].numeric);
  // Shipped SQL carries a prepared-statement marker, not a literal.
  EXPECT_NE(prepared.value()->sql.find("?"), std::string::npos)
      << prepared.value()->sql;

  // Each binding must agree with the equivalent literal query, through
  // BOTH physical-plan executors, off the ONE cached artifact.
  const std::pair<double, const char*> family[] = {
      {10.0, "//item[price > 10.0]/name"},
      {20.0, "//item[price > 20.0]/name"},
      {7.0, "//item[price > 7.0]/name"},
      {1000.0, "//item[price > 1000.0]/name"},
  };
  for (const auto& [value, literal_text] : family) {
    RunOptions run;
    run.context_document = "site.xml";
    auto literal = processor_.Run(literal_text, run);
    ASSERT_TRUE(literal.ok()) << literal.status().ToString();
    for (bool columnar : {false, true}) {
      auto bound =
          Bind(processor_, prepared.value(), Value::Double(value), columnar);
      ASSERT_TRUE(bound.ok()) << bound.status().ToString();
      EXPECT_EQ(bound.value().items, literal.value().items)
          << literal_text << (columnar ? " (columnar)" : " (row)");
    }
  }
  // Integer bindings hit the same numeric comparison.
  auto int_bound = Bind(processor_, prepared.value(), Value::Int(10), false);
  ASSERT_TRUE(int_bound.ok());
  EXPECT_EQ(int_bound.value().result_count(), 2u);

  // Re-preparing the same text is a cache hit on the same artifact: the
  // whole family shared one compilation.
  auto again = processor_.Prepare(param_query_, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().get(), prepared.value().get());
  EXPECT_GE(processor_.plan_cache_stats().hits, 1);
}

TEST_F(ParameterizedQueryTest, StringParametersUseTheValueColumn) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(
      "declare variable $wanted external; //item[name = $wanted]/price",
      options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ(prepared.value()->parameters.size(), 1u);
  EXPECT_FALSE(prepared.value()->parameters[0].numeric);
  for (bool columnar : {false, true}) {
    ExecuteOptions exec;
    exec.use_columnar = columnar;
    exec.parameters["wanted"] = Value::String("vase");
    auto result = processor_.ExecuteAll(prepared.value(), exec);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result.value().result_count(), 1u);
    EXPECT_EQ(result.value().items[0], "<price>7.0</price>");
    exec.parameters["wanted"] = Value::String("no-such-item");
    auto empty = processor_.ExecuteAll(prepared.value(), exec);
    ASSERT_TRUE(empty.ok());
    EXPECT_EQ(empty.value().result_count(), 0u);
  }
}

TEST_F(ParameterizedQueryTest, BindingsAreValidated) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(param_query_, options);
  ASSERT_TRUE(prepared.ok());

  // Missing binding.
  auto missing = processor_.ExecuteAll(prepared.value(), ExecuteOptions{});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);

  // Unknown parameter name.
  ExecuteOptions unknown;
  unknown.parameters["minprice"] = Value::Double(1);
  unknown.parameters["typo"] = Value::Double(2);
  auto extra = processor_.ExecuteAll(prepared.value(), unknown);
  ASSERT_FALSE(extra.ok());
  EXPECT_EQ(extra.status().code(), StatusCode::kInvalidArgument);

  // Type mismatch against the declaration.
  ExecuteOptions mistyped;
  mistyped.parameters["minprice"] = Value::String("ten");
  auto typed = processor_.ExecuteAll(prepared.value(), mistyped);
  ASSERT_FALSE(typed.ok());
  EXPECT_EQ(typed.status().code(), StatusCode::kInvalidArgument);

  // A NULL binding is legal and never matches (NULL comparison
  // semantics) — the SQL-ish contract for parameter markers.
  ExecuteOptions null_bound;
  null_bound.parameters["minprice"] = Value::Null();
  auto none = processor_.ExecuteAll(prepared.value(), null_bound);
  ASSERT_TRUE(none.ok()) << none.status().ToString();
  EXPECT_EQ(none.value().result_count(), 0u);

  // Binding parameters to a parameterless query is rejected too.
  PrepareOptions plain;
  plain.context_document = "site.xml";
  auto no_params = processor_.Prepare("//item", plain);
  ASSERT_TRUE(no_params.ok());
  ExecuteOptions stray;
  stray.parameters["minprice"] = Value::Double(1);
  auto rejected = processor_.ExecuteAll(no_params.value(), stray);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParameterizedQueryTest, StackedModeExecutesParameters) {
  // The stacked lane resolves parameter markers in its compiled plan at
  // execute time (ResolveParams substitution) — one cached stacked plan
  // serves the literal family, row and columnar executors agreeing with
  // the equivalent literal query.
  PrepareOptions options;
  options.mode = Mode::kStacked;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(param_query_, options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  ASSERT_EQ(prepared.value()->parameters.size(), 1u);

  const std::pair<double, const char*> family[] = {
      {10.0, "//item[price > 10.0]/name"},
      {20.0, "//item[price > 20.0]/name"},
      {7.0, "//item[price > 7.0]/name"},
      {1000.0, "//item[price > 1000.0]/name"},
  };
  for (const auto& [value, literal_text] : family) {
    RunOptions run;
    run.mode = Mode::kStacked;
    run.context_document = "site.xml";
    auto literal = processor_.Run(literal_text, run);
    ASSERT_TRUE(literal.ok()) << literal.status().ToString();
    for (bool columnar : {false, true}) {
      auto bound =
          Bind(processor_, prepared.value(), Value::Double(value), columnar);
      ASSERT_TRUE(bound.ok()) << bound.status().ToString();
      EXPECT_EQ(bound.value().items, literal.value().items)
          << value << (columnar ? " (columnar)" : " (row)");
    }
  }

  // An unbound execution is still rejected by the binding validation.
  auto missing = processor_.ExecuteAll(prepared.value(), ExecuteOptions{});
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ParameterizedQueryTest, NativeModesExecuteParameters) {
  // The native engine interprets literals directly, so the cursor binds
  // the parameter values into a literal Core tree per execution
  // (BindParams). One prepared query serves the literal family with
  // results identical to the equivalent literal queries, in both native
  // lanes.
  for (Mode mode : {Mode::kNativeWhole, Mode::kNativeSegmented}) {
    PrepareOptions options;
    options.mode = mode;
    options.context_document = "site.xml";
    auto prepared = processor_.Prepare(param_query_, options);
    ASSERT_TRUE(prepared.ok())
        << ModeToString(mode) << ": " << prepared.status().ToString();
    ASSERT_EQ(prepared.value()->parameters.size(), 1u);

    for (double value : {10.0, 20.0, 7.0, 1000.0}) {
      RunOptions run;
      run.mode = mode;
      run.context_document = "site.xml";
      const std::string literal_text = "//item[price > " +
                                       std::to_string(value) + "]/name";
      auto literal = processor_.Run(literal_text, run);
      ASSERT_TRUE(literal.ok()) << literal.status().ToString();
      auto bound = Bind(processor_, prepared.value(), Value::Double(value),
                        /*use_columnar=*/false);
      ASSERT_TRUE(bound.ok())
          << ModeToString(mode) << ": " << bound.status().ToString();
      EXPECT_EQ(bound.value().items, literal.value().items)
          << ModeToString(mode) << " value " << value;
    }

    // NULL binding: the marker becomes the empty sequence, and an
    // existential comparison over () is false — no rows, no error.
    ExecuteOptions null_bound;
    null_bound.parameters["minprice"] = Value::Null();
    auto none = processor_.ExecuteAll(prepared.value(), null_bound);
    ASSERT_TRUE(none.ok())
        << ModeToString(mode) << ": " << none.status().ToString();
    EXPECT_EQ(none.value().result_count(), 0u) << ModeToString(mode);
  }
}

TEST(PreparedQueryStandaloneTest, ExecuteRejectsNullAndNativeNeedsDocuments) {
  XQueryProcessor processor;
  EXPECT_FALSE(processor.Execute(nullptr).ok());
  PrepareOptions options;
  options.mode = Mode::kNativeWhole;
  auto prepared = processor.Prepare("doc(\"x.xml\")//a", options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto cursor = processor.Execute(prepared.value());
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xqjg::api
