// Prepare/Execute lifecycle: the compiled artifact is immutable and
// reusable, cursors stream in batches, ExecuteAll preserves Run
// semantics, and stale artifacts are rejected after catalog changes.
#include <gtest/gtest.h>

#include <memory>

#include "src/api/processor.h"
#include "tests/testutil/fixtures.h"

namespace xqjg::api {
namespace {

class PreparedQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(processor_
                    .LoadDocument("site.xml", testutil::TinySiteXml(),
                                  {"item"})
                    .ok());
    ASSERT_TRUE(processor_.CreateRelationalIndexes().ok());
  }

  XQueryProcessor processor_;
  const std::string query_ = "//item[price > 10.0]/name";
};

TEST_F(PreparedQueryTest, PrepareCapturesCompiledArtifacts) {
  PrepareOptions options;
  options.mode = Mode::kJoinGraph;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const PreparedQuery& pq = *prepared.value();
  EXPECT_EQ(pq.query_text, query_);
  EXPECT_NE(pq.core, nullptr);
  EXPECT_NE(pq.stacked, nullptr);
  EXPECT_NE(pq.isolated, nullptr);
  EXPECT_TRUE(pq.has_plan);
  EXPECT_FALSE(pq.used_fallback);
  EXPECT_NE(pq.graph, nullptr);
  EXPECT_EQ(pq.plan.graph, pq.graph.get());  // plan points into the artifact
  EXPECT_FALSE(pq.sql.empty());
  EXPECT_FALSE(pq.explain.empty());
  EXPECT_GT(pq.diagnostics.ops_stacked, pq.diagnostics.ops_isolated);
  EXPECT_GE(pq.compile_seconds, 0.0);
  EXPECT_EQ(pq.catalog_generation, processor_.catalog_generation());
}

TEST_F(PreparedQueryTest, RunMatchesPrepareExecuteInEveryMode) {
  for (Mode mode : {Mode::kStacked, Mode::kJoinGraph, Mode::kNativeWhole,
                    Mode::kNativeSegmented}) {
    RunOptions run_options;
    run_options.mode = mode;
    run_options.context_document = "site.xml";
    auto via_run = processor_.Run(query_, run_options);
    ASSERT_TRUE(via_run.ok())
        << ModeToString(mode) << ": " << via_run.status().ToString();

    PrepareOptions prep;
    prep.mode = mode;
    prep.context_document = "site.xml";
    auto prepared = processor_.Prepare(query_, prep);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto via_execute = processor_.ExecuteAll(prepared.value());
    ASSERT_TRUE(via_execute.ok()) << via_execute.status().ToString();

    EXPECT_EQ(via_run.value().items, via_execute.value().items)
        << ModeToString(mode);
    EXPECT_EQ(via_run.value().sql, via_execute.value().sql);
    EXPECT_EQ(via_run.value().explain, via_execute.value().explain);
    EXPECT_EQ(via_run.value().used_fallback, via_execute.value().used_fallback);
  }
}

TEST_F(PreparedQueryTest, CursorStreamsInBatches) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto oracle = processor_.ExecuteAll(prepared.value());
  ASSERT_TRUE(oracle.ok());
  ASSERT_GE(oracle.value().result_count(), 2u);

  auto cursor = processor_.Execute(prepared.value());
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  ResultCursor& c = *cursor.value();
  EXPECT_FALSE(c.exhausted());  // plan has not run yet
  EXPECT_EQ(c.stats().rows_total, -1);

  std::vector<std::string> streamed;
  size_t batches = 0;
  while (true) {
    auto batch = c.FetchNext(1);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    if (batch.value().empty()) break;
    EXPECT_EQ(batch.value().size(), 1u);
    for (auto& item : batch.value()) streamed.push_back(std::move(item));
    ++batches;
  }
  EXPECT_TRUE(c.exhausted());
  EXPECT_EQ(streamed, oracle.value().items);
  EXPECT_EQ(batches, oracle.value().result_count());
  // One source of truth: cursor counts equal materialized counts.
  EXPECT_EQ(static_cast<size_t>(c.stats().rows_total),
            oracle.value().result_count());
  EXPECT_EQ(static_cast<size_t>(c.stats().rows_fetched),
            oracle.value().result_count());
}

TEST_F(PreparedQueryTest, FetchZeroIsAnErrorAndExhaustionIsSticky) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto cursor = processor_.Execute(prepared.value());
  ASSERT_TRUE(cursor.ok());
  EXPECT_FALSE(cursor.value()->FetchNext(0).ok());
  auto all = cursor.value()->FetchAll();
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(cursor.value()->exhausted());
  auto after = cursor.value()->FetchNext(8);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().empty());
}

TEST_F(PreparedQueryTest, ConcurrentCursorsOverOnePreparedQueryAreIndependent) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto c1 = processor_.Execute(prepared.value());
  auto c2 = processor_.Execute(prepared.value());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  // Interleaved fetches: each cursor keeps its own position.
  auto b1 = c1.value()->FetchNext(1);
  auto b2 = c2.value()->FetchAll();
  auto b1rest = c1.value()->FetchAll();
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  ASSERT_TRUE(b1rest.ok());
  std::vector<std::string> via_c1 = b1.value();
  for (auto& item : b1rest.value()) via_c1.push_back(std::move(item));
  EXPECT_EQ(via_c1, b2.value());
}

TEST_F(PreparedQueryTest, StalePreparedQueryIsRejectedAfterCatalogChange) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok());
  ASSERT_TRUE(processor_.Execute(prepared.value()).ok());

  ASSERT_TRUE(
      processor_.LoadDocument("other.xml", testutil::TinyBibXml()).ok());
  auto stale = processor_.Execute(prepared.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);

  // Re-preparing against the new catalog works again.
  auto fresh = processor_.Prepare(query_, options);
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(processor_.Execute(fresh.value()).ok());
}

TEST_F(PreparedQueryTest, OutstandingCursorGoesStaleWithTheCatalog) {
  // A cursor created before a catalog mutation must refuse to fetch
  // (its captured database/engine pointers would dangle) — both before
  // the plan ran and mid-stream.
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item", options);
  ASSERT_TRUE(prepared.ok());
  auto unexecuted = processor_.Execute(prepared.value());
  auto midstream = processor_.Execute(prepared.value());
  ASSERT_TRUE(unexecuted.ok());
  ASSERT_TRUE(midstream.ok());
  ASSERT_TRUE(midstream.value()->FetchNext(1).ok());

  ASSERT_TRUE(
      processor_.LoadDocument("other.xml", testutil::TinyBibXml()).ok());
  for (ResultCursor* cursor :
       {unexecuted.value().get(), midstream.value().get()}) {
    auto fetch = cursor->FetchNext(1);
    ASSERT_FALSE(fetch.ok());
    EXPECT_EQ(fetch.status().code(), StatusCode::kInvalidArgument);
    auto all = cursor->FetchAll();
    ASSERT_FALSE(all.ok());
    EXPECT_EQ(all.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(PreparedQueryTest, DroppingIndexesInvalidatesPreparedPlans) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok());
  processor_.DropRelationalIndexes();
  auto stale = processor_.Execute(prepared.value());
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PreparedQueryTest, ExecuteLimitsApplyPerExecution) {
  PrepareOptions options;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare(query_, options);
  ASSERT_TRUE(prepared.ok());
  for (bool columnar : {false, true}) {
    // The planner executors must honor both DNF budgets per execution.
    ExecuteOptions timeout;
    timeout.use_columnar = columnar;
    timeout.limits.timeout_seconds = 1e-9;
    auto timed = processor_.ExecuteAll(prepared.value(), timeout);
    ASSERT_FALSE(timed.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(timed.status().code(), StatusCode::kTimeout);

    ExecuteOptions rows;
    rows.use_columnar = columnar;
    rows.limits.max_intermediate_rows = 1;
    auto bounded = processor_.ExecuteAll(prepared.value(), rows);
    ASSERT_FALSE(bounded.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(bounded.status().code(), StatusCode::kTimeout);

    // The same artifact still executes unlimited afterwards (budgets are
    // per execution, not baked into the plan).
    ExecuteOptions unlimited;
    unlimited.use_columnar = columnar;
    auto ok = processor_.ExecuteAll(prepared.value(), unlimited);
    ASSERT_TRUE(ok.ok()) << ok.status().ToString();
    EXPECT_GT(ok.value().result_count(), 0u);
  }
}

TEST_F(PreparedQueryTest, NativeModesPrepareWithoutRelationalCompilation) {
  PrepareOptions options;
  options.mode = Mode::kNativeWhole;
  options.context_document = "site.xml";
  auto prepared = processor_.Prepare("//item/name", options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_NE(prepared.value()->core, nullptr);
  EXPECT_EQ(prepared.value()->stacked, nullptr);
  EXPECT_FALSE(prepared.value()->has_plan);
  auto result = processor_.ExecuteAll(prepared.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().result_count(), 0u);
}

TEST(PreparedQueryStandaloneTest, ExecuteRejectsNullAndNativeNeedsDocuments) {
  XQueryProcessor processor;
  EXPECT_FALSE(processor.Execute(nullptr).ok());
  PrepareOptions options;
  options.mode = Mode::kNativeWhole;
  auto prepared = processor.Prepare("doc(\"x.xml\")//a", options);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto cursor = processor.Execute(prepared.value());
  ASSERT_FALSE(cursor.ok());
  EXPECT_EQ(cursor.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace xqjg::api
