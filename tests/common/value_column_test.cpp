// kDictString end-to-end: construction, Append/AppendFrom promotion and
// DemoteToMixed, null handling, Gather dictionary sharing, and — the
// property every executor depends on — cross-representation agreement of
// EqualAt / SortLessAt / HashAt with plain string columns and with
// Value::Hash().
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/common/value_column.h"

namespace xqjg {
namespace {

TEST(DictColumn, BuildsDictionaryAndRoundTrips) {
  ValueColumn col = ValueColumn::DictStrings(
      {"item", "person", "item", "bidder", "item", "person"});
  ASSERT_EQ(col.tag(), ColumnTag::kDictString);
  ASSERT_EQ(col.size(), 6u);
  EXPECT_EQ(col.dict_size(), 3u);  // item, person, bidder
  EXPECT_EQ(col.GetValue(0).AsString(), "item");
  EXPECT_EQ(col.GetValue(3).AsString(), "bidder");
  EXPECT_EQ(col.StringAt(5), "person");
  // Codes of equal strings are equal; the lookup finds exactly them.
  EXPECT_EQ(col.dict_codes()[0], col.dict_codes()[2]);
  EXPECT_EQ(col.DictCode("bidder"),
            static_cast<int64_t>(col.dict_codes()[3]));
  EXPECT_EQ(col.DictCode("absent"), -1);
}

TEST(DictColumn, NullHandling) {
  ValueColumn col =
      ValueColumn::DictStrings({"x", "", "y"}, {0, 1, 0});
  ASSERT_TRUE(col.has_nulls());
  EXPECT_FALSE(col.IsNull(0));
  EXPECT_TRUE(col.IsNull(1));
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(2).AsString(), "y");
  EXPECT_EQ(col.HashAt(1), Value::kNullHash);
  col.AppendNull();
  ASSERT_EQ(col.size(), 4u);
  EXPECT_TRUE(col.IsNull(3));
  // NULL slots never enter the dictionary.
  EXPECT_EQ(col.dict_size(), 2u);
}

TEST(DictColumn, AppendPromotesStringsIntoTheDictionary) {
  ValueColumn col = ValueColumn::DictStrings({"a", "b"});
  col.Append(Value::String("a"));  // existing entry: code reuse
  col.Append(Value::String("c"));  // new entry: interned
  ASSERT_EQ(col.tag(), ColumnTag::kDictString);
  ASSERT_EQ(col.size(), 4u);
  EXPECT_EQ(col.dict_size(), 3u);
  EXPECT_EQ(col.dict_codes()[2], col.dict_codes()[0]);
  EXPECT_EQ(col.GetValue(3).AsString(), "c");
}

TEST(DictColumn, AppendOfNonStringDemotesToMixed) {
  ValueColumn col = ValueColumn::DictStrings({"a", "b"});
  col.Append(Value::Int(7));
  ASSERT_EQ(col.tag(), ColumnTag::kMixed);
  ASSERT_EQ(col.size(), 3u);
  // Demotion preserves every cell.
  EXPECT_EQ(col.GetValue(0).AsString(), "a");
  EXPECT_EQ(col.GetValue(1).AsString(), "b");
  EXPECT_EQ(col.GetValue(2).AsInt(), 7);
}

TEST(DictColumn, AppendFromSharedDictionaryCopiesCodes) {
  ValueColumn src = ValueColumn::DictStrings({"a", "b", "c"});
  ValueColumn dst = src.Gather({0});  // shares src's dictionary
  dst.AppendFrom(src, 2);
  ASSERT_EQ(dst.tag(), ColumnTag::kDictString);
  ASSERT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.GetValue(1).AsString(), "c");
  // No new dictionary was built: codes align with the source's.
  EXPECT_EQ(dst.dict_codes()[1], src.dict_codes()[2]);
}

TEST(DictColumn, AppendFromForeignColumnsStaysTyped) {
  ValueColumn plain = ValueColumn::Strings({"p", "q"});
  ValueColumn dict = ValueColumn::DictStrings({"a"});
  dict.AppendFrom(plain, 1);  // string → dict: interned
  ASSERT_EQ(dict.tag(), ColumnTag::kDictString);
  EXPECT_EQ(dict.GetValue(1).AsString(), "q");
  EXPECT_EQ(dict.dict_size(), 2u);
  ValueColumn out = ValueColumn::Strings({"z"});
  out.AppendFrom(dict, 0);  // dict → string: payload copied
  ASSERT_EQ(out.tag(), ColumnTag::kString);
  EXPECT_EQ(out.GetValue(1).AsString(), "a");
  // NULLs propagate across representations.
  ValueColumn with_null = ValueColumn::DictStrings({"x", ""}, {0, 1});
  out.AppendFrom(with_null, 1);
  EXPECT_TRUE(out.IsNull(2));
}

TEST(DictColumn, GatherSharesTheDictionary) {
  ValueColumn col =
      ValueColumn::DictStrings({"a", "b", "c", "b", ""}, {0, 0, 0, 0, 1});
  ValueColumn picked = col.Gather({4, 3, 1, 0});
  ASSERT_EQ(picked.tag(), ColumnTag::kDictString);
  ASSERT_EQ(picked.size(), 4u);
  EXPECT_TRUE(picked.IsNull(0));
  EXPECT_EQ(picked.GetValue(1).AsString(), "b");
  EXPECT_EQ(picked.GetValue(2).AsString(), "b");
  EXPECT_EQ(picked.GetValue(3).AsString(), "a");
  // Same dictionary object — a gather must not copy it.
  EXPECT_EQ(&picked.dict(), &col.dict());
}

TEST(DictColumn, CrossRepresentationAgreement) {
  const std::vector<std::string> strings = {"item", "bidder", "item",
                                            "person", ""};
  const std::vector<uint8_t> nulls = {0, 0, 0, 0, 1};
  ValueColumn dict = ValueColumn::DictStrings(strings, nulls);
  ValueColumn plain = ValueColumn::Strings(strings, nulls);
  for (size_t i = 0; i < strings.size(); ++i) {
    // HashAt must equal Value::Hash() of the boxed cell — the contract
    // hash joins across representations rely on.
    EXPECT_EQ(dict.HashAt(i), dict.GetValue(i).Hash()) << i;
    EXPECT_EQ(dict.HashAt(i), plain.HashAt(i)) << i;
    for (size_t j = 0; j < strings.size(); ++j) {
      EXPECT_EQ(ValueColumn::EqualAt(dict, i, dict, j),
                ValueColumn::EqualAt(plain, i, plain, j))
          << i << "," << j;
      EXPECT_EQ(ValueColumn::EqualAt(dict, i, plain, j),
                ValueColumn::EqualAt(plain, i, plain, j))
          << i << "," << j;
      EXPECT_EQ(ValueColumn::SortLessAt(dict, i, dict, j),
                ValueColumn::SortLessAt(plain, i, plain, j))
          << i << "," << j;
      EXPECT_EQ(ValueColumn::SortLessAt(dict, i, plain, j),
                ValueColumn::SortLessAt(plain, i, plain, j))
          << i << "," << j;
      EXPECT_EQ(ValueColumn::SortLessAt(plain, i, dict, j),
                ValueColumn::SortLessAt(plain, i, plain, j))
          << i << "," << j;
    }
  }
  // Two dictionary columns with DIFFERENT dictionaries still agree.
  ValueColumn other = ValueColumn::DictStrings(
      {"person", "item", "bidder", "item", ""}, {0, 0, 0, 0, 1});
  for (size_t i = 0; i < strings.size(); ++i) {
    for (size_t j = 0; j < strings.size(); ++j) {
      EXPECT_EQ(ValueColumn::EqualAt(dict, i, other, j),
                ValueColumn::EqualAt(plain, i, other, j))
          << i << "," << j;
      EXPECT_EQ(ValueColumn::SortLessAt(dict, i, other, j),
                ValueColumn::SortLessAt(plain, i, other, j))
          << i << "," << j;
    }
  }
}

TEST(DictColumn, CopyOnWritePreservesSharedReaders) {
  ValueColumn src = ValueColumn::DictStrings({"a", "b"});
  ValueColumn view = src.Gather({0, 1});  // shares the dictionary
  view.Append(Value::String("new"));      // must clone, not mutate, the dict
  EXPECT_EQ(src.dict_size(), 2u);
  EXPECT_EQ(view.dict_size(), 3u);
  EXPECT_EQ(src.DictCode("new"), -1);
  EXPECT_EQ(view.GetValue(2).AsString(), "new");
}

}  // namespace
}  // namespace xqjg
