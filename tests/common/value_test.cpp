// Common substrate: Value semantics, string helpers, Status plumbing.
#include <gtest/gtest.h>

#include "src/common/status.h"
#include "src/common/str.h"
#include "src/common/value.h"

namespace xqjg {
namespace {

TEST(Value, NumericCrossTypeComparison) {
  EXPECT_EQ(Value::Int(5).Compare(Value::Double(5.0)), 0);
  EXPECT_EQ(Value::Int(5).Compare(Value::Double(5.5)), -1);
  EXPECT_EQ(Value::Double(6.0).Compare(Value::Int(5)), 1);
  EXPECT_TRUE(Value::Int(5) == Value::Double(5.0));
  // equal values must hash equally (hash join correctness)
  EXPECT_EQ(Value::Int(5).Hash(), Value::Double(5.0).Hash());
}

TEST(Value, NullComparisonsAreUnknown) {
  EXPECT_EQ(Value::Null().Compare(Value::Int(1)), Value::kNullCmp);
  EXPECT_EQ(Value::Int(1).Compare(Value::Null()), Value::kNullCmp);
  EXPECT_TRUE(Value::Null() == Value::Null());  // grouping semantics
  EXPECT_FALSE(Value::Null() == Value::Int(0));
}

TEST(Value, SortOrderIsTotal) {
  std::vector<Value> values = {Value::String("b"), Value::Int(2),
                               Value::Null(), Value::Double(1.5),
                               Value::String("a")};
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) { return a.SortLess(b); });
  EXPECT_TRUE(values[0].is_null());
  EXPECT_DOUBLE_EQ(values[1].AsDouble(), 1.5);
  EXPECT_EQ(values[2].AsInt(), 2);
  EXPECT_EQ(values[3].AsString(), "a");
  EXPECT_EQ(values[4].AsString(), "b");
}

TEST(Str, ParseDecimalAcceptsAndRejects) {
  EXPECT_DOUBLE_EQ(*ParseDecimal("15"), 15.0);
  EXPECT_DOUBLE_EQ(*ParseDecimal(" 4.20 "), 4.2);
  EXPECT_DOUBLE_EQ(*ParseDecimal("-3.5e2"), -350.0);
  EXPECT_FALSE(ParseDecimal("18:43").has_value());
  EXPECT_FALSE(ParseDecimal("").has_value());
  EXPECT_FALSE(ParseDecimal("12abc").has_value());
  EXPECT_FALSE(ParseDecimal("nan").has_value());
}

TEST(Str, FormatDecimalRoundTrips) {
  EXPECT_EQ(FormatDecimal(15.0), "15");
  EXPECT_EQ(FormatDecimal(4.2), "4.2");
  for (double d : {0.1, 1e-9, 123456.789, -2.5}) {
    auto parsed = ParseDecimal(FormatDecimal(d));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_DOUBLE_EQ(*parsed, d);
  }
}

TEST(Str, EscapingHelpers) {
  EXPECT_EQ(XmlEscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(XmlEscapeText("say \"hi\""), "say \"hi\"");
  EXPECT_EQ(XmlEscapeAttr("say \"hi\""), "say &quot;hi&quot;");
  EXPECT_EQ(SqlQuote("O'Neil"), "'O''Neil'");
}

TEST(Str, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("   "), "");
}

TEST(Status, MacrosPropagate) {
  auto fails = []() -> Status {
    XQJG_RETURN_NOT_OK(Status::ParseError("inner"));
    return Status::OK();
  };
  EXPECT_EQ(fails().code(), StatusCode::kParseError);
  auto assigns = []() -> Result<int> {
    XQJG_ASSIGN_OR_RETURN(int v, Result<int>(21));
    return v * 2;
  };
  EXPECT_EQ(assigns().value(), 42);
  auto propagates = []() -> Result<int> {
    XQJG_ASSIGN_OR_RETURN(int v, Result<int>(Status::NotFound("gone")));
    return v;
  };
  EXPECT_EQ(propagates().status().code(), StatusCode::kNotFound);
}

TEST(Status, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_EQ(Status::Timeout("budget").ToString(), "Timeout: budget");
}

}  // namespace
}  // namespace xqjg
