// Workload generators: determinism, schema presence, distribution
// properties the paper's queries rely on.
#include <gtest/gtest.h>

#include "src/data/dblp.h"
#include "src/data/xmark.h"
#include "src/xml/parser.h"

namespace xqjg::data {
namespace {

TEST(Xmark, DeterministicForSameSeed) {
  XmarkOptions options;
  options.scale = 0.1;
  EXPECT_EQ(GenerateXmark(options), GenerateXmark(options));
  options.seed = 43;
  EXPECT_NE(GenerateXmark(options), GenerateXmark({}));
}

TEST(Xmark, ParsesAndContainsQuerySchema) {
  XmarkOptions options;
  options.scale = 0.1;
  std::string text = GenerateXmark(options);
  xml::DocTable doc;
  ASSERT_TRUE(xml::LoadDocument(&doc, "auction.xml", text).ok());
  std::map<std::string, int> tags;
  int prices_over_500 = 0;
  for (int64_t pre = 0; pre < doc.row_count(); ++pre) {
    if (doc.kind(pre) == xml::NodeKind::kElem) tags[doc.name(pre)]++;
    if (doc.kind(pre) == xml::NodeKind::kElem && doc.name(pre) == "price" &&
        doc.has_data(pre) && doc.data(pre) > 500) {
      ++prices_over_500;
    }
  }
  // Everything Q1-Q4 touches exists.
  for (const char* tag :
       {"site", "open_auction", "closed_auction", "bidder", "increase",
        "price", "itemref", "item", "incategory", "category", "name",
        "person", "people"}) {
    EXPECT_GT(tags[tag], 0) << tag;
  }
  EXPECT_EQ(tags["open_auction"], options.open_auctions());
  EXPECT_EQ(tags["closed_auction"], options.closed_auctions());
  // price > 500 is selective but non-empty at reasonable scales (the Q2
  // predicate's "only a fraction" property).
  EXPECT_GT(prices_over_500, 0);
  EXPECT_LT(prices_over_500, tags["price"] / 2);
}

TEST(Xmark, ReferentialIntegrityOfItemRefs) {
  XmarkOptions options;
  options.scale = 0.05;
  xml::DocTable doc;
  ASSERT_TRUE(
      xml::LoadDocument(&doc, "auction.xml", GenerateXmark(options)).ok());
  std::set<std::string> item_ids;
  std::set<std::string> category_ids;
  std::vector<std::string> itemrefs;
  std::vector<std::string> incategories;
  for (int64_t pre = 0; pre < doc.row_count(); ++pre) {
    if (doc.kind(pre) != xml::NodeKind::kAttr) continue;
    const std::string& owner = doc.name(doc.Parent(pre));
    if (doc.name(pre) == "id" && owner == "item") {
      item_ids.insert(doc.value(pre));
    }
    if (doc.name(pre) == "id" && owner == "category") {
      category_ids.insert(doc.value(pre));
    }
    if (doc.name(pre) == "item" && owner == "itemref") {
      itemrefs.push_back(doc.value(pre));
    }
    if (doc.name(pre) == "category" && owner == "incategory") {
      incategories.push_back(doc.value(pre));
    }
  }
  for (const auto& ref : itemrefs) {
    EXPECT_TRUE(item_ids.count(ref)) << ref;
  }
  for (const auto& ref : incategories) {
    EXPECT_TRUE(category_ids.count(ref)) << ref;
  }
}

TEST(Dblp, ContainsQ5KeyExactlyOnce) {
  DblpOptions options;
  options.publications = 500;
  std::string text = GenerateDblp(options);
  size_t first = text.find("key=\"conf/vldb2001\"");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("key=\"conf/vldb2001\"", first + 1),
            std::string::npos);
}

TEST(Dblp, HasEarlyThesesForQ6) {
  DblpOptions options;
  options.publications = 2000;
  xml::DocTable doc;
  ASSERT_TRUE(xml::LoadDocument(&doc, "dblp.xml", GenerateDblp(options)).ok());
  int theses = 0, early = 0;
  for (int64_t pre = 0; pre < doc.row_count(); ++pre) {
    if (doc.kind(pre) != xml::NodeKind::kElem ||
        doc.name(pre) != "phdthesis") {
      continue;
    }
    ++theses;
    for (int64_t c = pre + 1; c <= pre + doc.size(pre); ++c) {
      if (doc.kind(c) == xml::NodeKind::kElem && doc.name(c) == "year" &&
          doc.value(c) < "1994") {
        ++early;
        break;
      }
    }
  }
  EXPECT_GT(theses, 20);
  EXPECT_GT(early, 0);
  EXPECT_LT(early, theses);
}

}  // namespace
}  // namespace xqjg::data
