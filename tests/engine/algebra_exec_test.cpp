// Materializing evaluator: operator semantics against hand-computed
// expectations, NULL handling, RANK tie behavior, limits.
#include <gtest/gtest.h>

#include "src/engine/algebra_exec.h"
#include "src/xml/parser.h"

namespace xqjg::engine {
namespace {

using algebra::CmpOp;
using algebra::MakeAttach;
using algebra::MakeCross;
using algebra::MakeDistinct;
using algebra::MakeJoin;
using algebra::MakeLiteral;
using algebra::MakeProject;
using algebra::MakeRank;
using algebra::MakeRowId;
using algebra::MakeSelect;
using algebra::OpPtr;
using algebra::Predicate;
using algebra::Term;

xml::DocTable EmptyDoc() {
  xml::DocTable doc;
  EXPECT_TRUE(xml::LoadDocument(&doc, "x", "<x/>").ok());
  return doc;
}

OpPtr Numbers(std::vector<int64_t> values) {
  std::vector<std::vector<Value>> rows;
  for (int64_t v : values) rows.push_back({Value::Int(v)});
  return MakeLiteral({"n"}, std::move(rows));
}

TEST(AlgebraExec, SelectAndProject) {
  xml::DocTable doc = EmptyDoc();
  OpPtr plan = MakeProject(
      MakeSelect(Numbers({1, 5, 3, 5}),
                 Predicate::Single(Term::Col("n"), CmpOp::kGe,
                                   Term::Const(Value::Int(3)))),
      {{"m", "n"}});
  auto result = Evaluate(plan, doc);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 3u);
  EXPECT_EQ(result.value().schema, (std::vector<std::string>{"m"}));
}

TEST(AlgebraExec, HashJoinAndResidual) {
  xml::DocTable doc = EmptyDoc();
  OpPtr left = MakeProject(Numbers({1, 2, 3}), {{"a", "n"}});
  OpPtr right = MakeProject(Numbers({2, 3, 3, 4}), {{"b", "n"}});
  Predicate p = Predicate::Single(Term::Col("a"), CmpOp::kEq, Term::Col("b"));
  auto result = Evaluate(MakeJoin(left, right, p), doc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 3u);  // (2,2) (3,3) (3,3)
}

TEST(AlgebraExec, RangeJoinFallsBackToNestedLoop) {
  xml::DocTable doc = EmptyDoc();
  OpPtr left = MakeProject(Numbers({1, 4}), {{"a", "n"}});
  OpPtr right = MakeProject(Numbers({2, 3, 5}), {{"b", "n"}});
  Predicate p = Predicate::Single(Term::Col("a"), CmpOp::kLt, Term::Col("b"));
  auto result = Evaluate(MakeJoin(left, right, p), doc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 4u);  // 1<2,1<3,1<5,4<5
}

TEST(AlgebraExec, DistinctAndRowId) {
  xml::DocTable doc = EmptyDoc();
  auto distinct = Evaluate(MakeDistinct(Numbers({2, 1, 2, 2, 1})), doc);
  ASSERT_TRUE(distinct.ok());
  EXPECT_EQ(distinct.value().rows.size(), 2u);
  auto rowid = Evaluate(MakeRowId(Numbers({7, 7, 7}), "id"), doc);
  ASSERT_TRUE(rowid.ok());
  std::set<int64_t> ids;
  for (const auto& row : rowid.value().rows) ids.insert(row[1].AsInt());
  EXPECT_EQ(ids.size(), 3u) << "row ids must be unique";
}

TEST(AlgebraExec, RankUsesRankSemanticsWithTies) {
  xml::DocTable doc = EmptyDoc();
  auto result = Evaluate(MakeRank(Numbers({30, 10, 30, 20}), "r", {"n"}), doc);
  ASSERT_TRUE(result.ok());
  // values 10,20,30,30 -> ranks 1,2,3,3 (ties share; the isolation rules
  // depend on this, DESIGN.md §5)
  std::map<int64_t, int64_t> rank_of;
  for (const auto& row : result.value().rows) {
    rank_of[row[0].AsInt()] = row[1].AsInt();
  }
  EXPECT_EQ(rank_of[10], 1);
  EXPECT_EQ(rank_of[20], 2);
  EXPECT_EQ(rank_of[30], 3);
}

TEST(AlgebraExec, NullComparesFalse) {
  xml::DocTable doc = EmptyDoc();
  OpPtr lit = MakeLiteral({"v"}, {{Value::Null()}, {Value::Int(1)}});
  auto eq = Evaluate(MakeSelect(lit, Predicate::Single(
                                         Term::Col("v"), CmpOp::kEq,
                                         Term::Const(Value::Null()))),
                     doc);
  ASSERT_TRUE(eq.ok());
  EXPECT_TRUE(eq.value().rows.empty()) << "NULL = NULL is not true";
  auto ne = Evaluate(MakeSelect(lit, Predicate::Single(
                                         Term::Col("v"), CmpOp::kNe,
                                         Term::Const(Value::Int(0)))),
                     doc);
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne.value().rows.size(), 1u) << "NULL != 0 is not true either";
}

TEST(AlgebraExec, TermAdditionMixedTypes) {
  xml::DocTable doc = EmptyDoc();
  OpPtr lit = MakeLiteral({"a", "b"},
                          {{Value::Int(1), Value::Double(2.5)},
                           {Value::Int(5), Value::Double(0.5)}});
  auto result = Evaluate(
      MakeSelect(lit, Predicate::Single(Term::ColSum("a", "b"), CmpOp::kGt,
                                        Term::Const(Value::Double(4.0)))),
      doc);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 1u);  // 5 + 0.5 > 4
}

TEST(AlgebraExec, RowBudgetTriggersDnf) {
  xml::DocTable doc = EmptyDoc();
  OpPtr big = Numbers(std::vector<int64_t>(200, 1));
  OpPtr rebig = MakeProject(big, {{"m", "n"}});
  OpPtr cross = MakeCross(big, rebig);  // 40000 rows
  ExecLimits limits;
  limits.max_intermediate_rows = 1000;
  auto result = Evaluate(cross, doc, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST(AlgebraExec, BuildDocRelationColumns) {
  xml::DocTable doc;
  ASSERT_TRUE(
      xml::LoadDocument(&doc, "d.xml", "<a x=\"3.5\"><b>hi</b></a>").ok());
  MatTable rel = BuildDocRelation(doc);
  ASSERT_EQ(rel.schema, algebra::DocColumns());
  ASSERT_EQ(rel.rows.size(), 5u);  // DOC, a, @x, b, text
  // @x row: value "3.5", data 3.5
  const auto& attr = rel.rows[2];
  EXPECT_EQ(attr[rel.ColumnIndex("value")].AsString(), "3.5");
  EXPECT_DOUBLE_EQ(attr[rel.ColumnIndex("data")].AsDouble(), 3.5);
  // element <a> has size 3 and no value (size > 1)
  EXPECT_TRUE(rel.rows[1][rel.ColumnIndex("value")].is_null());
}

}  // namespace
}  // namespace xqjg::engine
