// B+-tree unit and property tests: every scan is verified against a
// brute-force reference over the same entries.
#include <gtest/gtest.h>

#include <random>

#include "src/engine/btree.h"

namespace xqjg::engine {
namespace {

Key K(std::initializer_list<int64_t> vals) {
  Key key;
  for (int64_t v : vals) key.push_back(Value::Int(v));
  return key;
}

std::vector<int64_t> BruteForce(
    const std::vector<std::pair<Key, int64_t>>& entries,
    const KeyRange& range) {
  std::vector<std::pair<Key, int64_t>> hits;
  for (const auto& [key, rid] : entries) {
    if (!range.lower.empty()) {
      int c = CompareKeyPrefix(range.lower, key);
      if (c > 0 || (c == 0 && !range.lower_inclusive)) continue;
    }
    if (!range.upper.empty()) {
      int c = CompareKeyPrefix(range.upper, key);
      if (c < 0 || (c == 0 && !range.upper_inclusive)) continue;
    }
    hits.emplace_back(key, rid);
  }
  std::stable_sort(hits.begin(), hits.end(), [](const auto& a, const auto& b) {
    return CompareKeyPrefix(a.first, b.first) < 0;
  });
  std::vector<int64_t> out;
  for (auto& h : hits) out.push_back(h.second);
  return out;
}

TEST(BTree, InsertAndPointLookup) {
  BTree tree(8);
  for (int64_t i = 0; i < 500; ++i) {
    tree.Insert(K({i % 50, i}), i);
  }
  EXPECT_EQ(tree.size(), 500u);
  KeyRange r;
  r.lower = r.upper = K({7});
  auto rids = tree.Lookup(r);
  EXPECT_EQ(rids.size(), 10u);  // 10 entries with first component 7
  for (int64_t rid : rids) EXPECT_EQ(rid % 50, 7);
}

TEST(BTree, EmptyTreeScans) {
  BTree tree;
  KeyRange r;
  EXPECT_TRUE(tree.Lookup(r).empty());
  r.lower = K({1});
  EXPECT_TRUE(tree.Lookup(r).empty());
}

TEST(BTree, BulkLoadMatchesInsert) {
  std::vector<std::pair<Key, int64_t>> entries;
  for (int64_t i = 0; i < 1000; ++i) entries.emplace_back(K({i / 3, i}), i);
  BTree bulk(16);
  bulk.BulkLoad(entries);
  BTree inserted(16);
  for (const auto& [k, rid] : entries) inserted.Insert(k, rid);
  for (int64_t probe = 0; probe < 340; probe += 7) {
    KeyRange r;
    r.lower = r.upper = K({probe});
    EXPECT_EQ(bulk.Lookup(r), inserted.Lookup(r)) << "probe " << probe;
  }
}

TEST(BTree, StringKeys) {
  BTree tree(8);
  const char* names[] = {"bidder", "item", "price", "open_auction", "name"};
  for (int64_t i = 0; i < 200; ++i) {
    tree.Insert({Value::String(names[i % 5]), Value::Int(i)}, i);
  }
  KeyRange r;
  r.lower = r.upper = {Value::String("price")};
  auto rids = tree.Lookup(r);
  EXPECT_EQ(rids.size(), 40u);
  for (int64_t rid : rids) EXPECT_EQ(rid % 5, 2);
}

class BTreeProperty : public ::testing::TestWithParam<int> {};

TEST_P(BTreeProperty, RandomRangesMatchBruteForce) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  std::vector<std::pair<Key, int64_t>> entries;
  const int n = 500 + GetParam() * 137;
  for (int64_t i = 0; i < n; ++i) {
    entries.emplace_back(
        K({static_cast<int64_t>(rng() % 40), static_cast<int64_t>(rng() % 97),
           i}),
        i);
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    int c = CompareKeyPrefix(a.first, b.first);
    if (c != 0) return c < 0;
    return a.second < b.second;
  });
  BTree tree(4 + GetParam() % 13);
  tree.BulkLoad(entries);
  for (int trial = 0; trial < 50; ++trial) {
    KeyRange r;
    const int shape = static_cast<int>(rng() % 4);
    int64_t a = static_cast<int64_t>(rng() % 40);
    int64_t lo = static_cast<int64_t>(rng() % 97);
    int64_t hi = lo + static_cast<int64_t>(rng() % 30);
    switch (shape) {
      case 0:  // full equality prefix
        r.lower = r.upper = K({a});
        break;
      case 1:  // prefix + range
        r.lower = K({a, lo});
        r.upper = K({a, hi});
        r.lower_inclusive = rng() % 2 == 0;
        r.upper_inclusive = rng() % 2 == 0;
        break;
      case 2:  // one-sided
        r.lower = K({a, lo});
        break;
      default:  // unbounded
        break;
    }
    auto got = tree.Lookup(r);
    auto want = BruteForce(entries, r);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "trial " << trial << " shape " << shape;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace xqjg::engine
