// Differential suite for the columnar batch executor: the row executor,
// the columnar executor, and the native interpreter must agree — on the
// paper's Q1–Q6 (stacked and isolated/join-graph execution) and on a
// family of queries over seeded randomized documents.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/compiler/compile.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"
#include "src/engine/algebra_exec.h"
#include "src/native/interp.h"
#include "src/opt/isolate.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"
#include "tests/testutil/fixtures.h"

namespace xqjg {
namespace {

class ColumnarPaperQueries : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    processor_ = new api::XQueryProcessor();
    data::XmarkOptions xmark;
    xmark.scale = 0.08;
    ASSERT_TRUE(processor_
                    ->LoadDocument("auction.xml", data::GenerateXmark(xmark))
                    .ok());
    data::DblpOptions dblp;
    dblp.publications = 300;
    ASSERT_TRUE(processor_
                    ->LoadDocument("dblp.xml", data::GenerateDblp(dblp))
                    .ok());
    ASSERT_TRUE(processor_->CreateRelationalIndexes().ok());
  }
  static void TearDownTestSuite() {
    delete processor_;
    processor_ = nullptr;
  }

  static api::XQueryProcessor* processor_;
};

api::XQueryProcessor* ColumnarPaperQueries::processor_ = nullptr;

class ColumnarPaperQueryCase
    : public ColumnarPaperQueries,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(ColumnarPaperQueryCase, RowAndColumnarAgreeInEveryRelationalMode) {
  const api::PaperQuery* query = nullptr;
  for (const auto& q : api::PaperQueries()) {
    if (q.id == GetParam()) query = &q;
  }
  ASSERT_NE(query, nullptr);
  api::RunOptions options;
  options.context_document = query->document;
  options.timeout_seconds = 120;
  for (api::Mode mode : {api::Mode::kStacked, api::Mode::kJoinGraph}) {
    options.mode = mode;
    options.use_columnar = false;
    auto row = processor_->Run(query->text, options);
    ASSERT_TRUE(row.ok()) << row.status().ToString();
    options.use_columnar = true;
    auto col = processor_->Run(query->text, options);
    ASSERT_TRUE(col.ok()) << col.status().ToString();
    EXPECT_EQ(row.value().items, col.value().items)
        << query->id << " row vs columnar in mode "
        << api::ModeToString(mode);
  }
  // Both must also match the native interpreter.
  options.mode = api::Mode::kNativeWhole;
  options.use_columnar = false;
  auto native = processor_->Run(query->text, options);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  options.mode = api::Mode::kJoinGraph;
  options.use_columnar = true;
  auto col = processor_->Run(query->text, options);
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(native.value().items, col.value().items)
      << query->id << " native vs columnar join graph";
}

INSTANTIATE_TEST_SUITE_P(PaperQueries, ColumnarPaperQueryCase,
                         ::testing::Values("Q1", "Q2", "Q3", "Q4", "Q5",
                                           "Q6"),
                         [](const ::testing::TestParamInfo<const char*>& pi) {
                           return std::string(pi.param);
                         });

// ---------------------------------------------------------------------------
// Randomized documents: stacked and isolated plans under both executors
// against the native interpreter, across seeds.

const char* kRandomQueries[] = {
    "doc(\"rand.xml\")//a",
    "doc(\"rand.xml\")//a/b",
    "doc(\"rand.xml\")//b[c]",
    "doc(\"rand.xml\")//c/parent::a",
    "doc(\"rand.xml\")//a[b > 10]/b",
    "doc(\"rand.xml\")//d/ancestor::b",
    "doc(\"rand.xml\")//a/@id",
    "doc(\"rand.xml\")//b/following-sibling::c",
    "for $x in doc(\"rand.xml\")//a for $y in doc(\"rand.xml\")//c "
    "where $x/@id = $y/@ref return $y",
    "for $x in doc(\"rand.xml\")//b where $x/c > 20 return $x/d",
};

class RandomDocCase : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDocCase, StackedAndIsolatedAgreeUnderBothExecutors) {
  const std::string xml = testutil::RandomXml(GetParam());
  xml::DocTable doc = testutil::LoadDoc("rand.xml", xml);
  auto dom = xml::ParseDom("rand.xml", xml);
  ASSERT_TRUE(dom.ok()) << dom.status().ToString();
  native::MapResolver resolver;
  resolver.Add(dom.value().get());
  engine::ExecOptions row_opts;
  engine::ExecOptions col_opts;
  col_opts.use_columnar = true;
  for (const char* query : kRandomQueries) {
    auto ast = xquery::Parse(query);
    ASSERT_TRUE(ast.ok()) << query << ": " << ast.status().ToString();
    auto core = xquery::Normalize(ast.value(), {});
    ASSERT_TRUE(core.ok()) << query << ": " << core.status().ToString();
    auto reference = native::EvaluateQuery(core.value(), &resolver);
    ASSERT_TRUE(reference.ok()) << query;
    std::vector<int64_t> expected;
    for (const xml::XmlNode* node : reference.value()) {
      expected.push_back(node->pre);
    }
    auto stacked = compiler::CompileQuery(core.value());
    ASSERT_TRUE(stacked.ok()) << query << ": " << stacked.status().ToString();
    auto iso = opt::Isolate(stacked.value());
    ASSERT_TRUE(iso.ok()) << query;
    for (const auto& [label, plan] :
         {std::pair<const char*, algebra::OpPtr>{"stacked", stacked.value()},
          {"isolated", iso.value().isolated}}) {
      auto row = engine::EvaluateToSequence(plan, doc, row_opts);
      ASSERT_TRUE(row.ok()) << query << " " << label;
      auto col = engine::EvaluateToSequence(plan, doc, col_opts);
      ASSERT_TRUE(col.ok()) << query << " " << label;
      EXPECT_EQ(row.value(), expected)
          << query << " " << label << " row vs native (seed " << GetParam()
          << ")";
      EXPECT_EQ(col.value(), expected)
          << query << " " << label << " columnar vs native (seed "
          << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDocCase,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace xqjg
