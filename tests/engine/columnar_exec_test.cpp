// Columnar batch executor: typed-column round trips, operator-level
// row-vs-columnar agreement on hand-built plans, the NULL-join-key
// regression (NULL keys must never match in a hash join, in either
// executor), and the memoization regression (shared sub-plans are
// materialized — and counted — exactly once).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/common/value_column.h"
#include "src/engine/algebra_exec.h"
#include "src/engine/columnar/column_batch.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "tests/testutil/fixtures.h"

namespace xqjg::engine {
namespace {

using algebra::CmpOp;
using algebra::MakeCross;
using algebra::MakeDistinct;
using algebra::MakeJoin;
using algebra::MakeLiteral;
using algebra::MakeProject;
using algebra::MakeRank;
using algebra::MakeSelect;
using algebra::OpPtr;
using algebra::Predicate;
using algebra::Term;

void ExpectTablesEqual(const MatTable& a, const MatTable& b,
                       const char* what) {
  ASSERT_EQ(a.schema, b.schema) << what;
  ASSERT_EQ(a.rows.size(), b.rows.size()) << what;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    ASSERT_EQ(a.rows[r].size(), b.rows[r].size()) << what << " row " << r;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      const Value& va = a.rows[r][c];
      const Value& vb = b.rows[r][c];
      EXPECT_TRUE(va.is_null() == vb.is_null() && (va.is_null() || va == vb))
          << what << " row " << r << " col " << c << ": " << va.ToString()
          << " vs " << vb.ToString();
    }
  }
}

/// Evaluates `plan` under both executors and requires identical tables.
MatTable EvalBothWays(const OpPtr& plan, const xml::DocTable& doc,
                      const char* what) {
  auto row = Evaluate(plan, doc);
  EXPECT_TRUE(row.ok()) << row.status().ToString();
  ExecOptions columnar;
  columnar.use_columnar = true;
  auto col = Evaluate(plan, doc, columnar);
  EXPECT_TRUE(col.ok()) << col.status().ToString();
  if (row.ok() && col.ok()) {
    ExpectTablesEqual(row.value(), col.value(), what);
    return row.value();
  }
  return MatTable{};
}

TEST(ValueColumn, RoundTripsMixedAndNullValues) {
  std::vector<Value> values = {
      Value::Null(),          Value::Int(7),      Value::Double(2.5),
      Value::String("text"),  Value::Null(),      Value::Int(-3),
  };
  ValueColumn col = ColumnFromValues(values);
  ASSERT_EQ(col.size(), values.size());
  EXPECT_EQ(col.tag(), ColumnTag::kMixed);
  std::vector<Value> back = ColumnToValues(col);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_TRUE(values[i].is_null() == back[i].is_null() &&
                (values[i].is_null() || values[i] == back[i]))
        << i;
    EXPECT_EQ(col.GetValue(i).Hash(), values[i].Hash()) << i;
  }
}

TEST(ValueColumn, NullsBeforeFirstValueDecideTagLate) {
  // The column must survive NULL rows arriving before the type is known.
  ValueColumn col;
  col.AppendNull();
  col.AppendNull();
  col.Append(Value::String("s"));
  ASSERT_EQ(col.tag(), ColumnTag::kString);
  EXPECT_TRUE(col.GetValue(0).is_null());
  EXPECT_TRUE(col.GetValue(1).is_null());
  EXPECT_EQ(col.GetValue(2).AsString(), "s");
}

TEST(ValueColumn, TypedPathMatchesValueSemantics) {
  ValueColumn ints = ValueColumn::Ints({5, 6, 5});
  ValueColumn doubles = ValueColumn::Doubles({5.0, 6.5, 4.0});
  // Cross-type numeric equality and hashing must mirror Value.
  EXPECT_TRUE(ValueColumn::EqualAt(ints, 0, doubles, 0));
  EXPECT_FALSE(ValueColumn::EqualAt(ints, 1, doubles, 1));
  EXPECT_EQ(ints.HashAt(0), doubles.HashAt(0));
  EXPECT_TRUE(ValueColumn::SortLessAt(doubles, 2, ints, 0));
  EXPECT_FALSE(ValueColumn::SortLessAt(ints, 0, doubles, 0));
}

TEST(ColumnBatch, MatTableRoundTrip) {
  xml::DocTable doc = testutil::LoadDoc("bib.xml", testutil::TinyBibXml());
  MatTable table = BuildDocRelation(doc);
  columnar::ColumnBatch batch = columnar::BatchFromMatTable(table);
  EXPECT_EQ(batch.num_rows, table.rows.size());
  ExpectTablesEqual(table, columnar::BatchToMatTable(batch), "round trip");
  // And the direct typed construction agrees with the row-major one.
  BudgetClock clock;
  auto direct = columnar::DocRelationBatch(doc, &clock);
  ASSERT_TRUE(direct.ok());
  ExpectTablesEqual(table, columnar::BatchToMatTable(direct.value()),
                    "doc relation");
}

OpPtr IntsLiteral(const std::string& col, std::vector<int64_t> values) {
  std::vector<std::vector<Value>> rows;
  rows.reserve(values.size());
  for (int64_t v : values) rows.push_back({Value::Int(v)});
  return MakeLiteral({col}, std::move(rows));
}

TEST(ColumnarExec, OperatorsAgreeWithRowExecutorOnHandBuiltPlans) {
  xml::DocTable doc = testutil::LoadDoc("site.xml", testutil::TinySiteXml());
  OpPtr lit = IntsLiteral("x", {5, 3, 9, 3, 7, 1});
  // σ
  OpPtr sel = MakeSelect(
      lit, Predicate::Single(Term::Col("x"), CmpOp::kGt, Term::Const(Value::Int(2))));
  MatTable sel_rows = EvalBothWays(sel, doc, "select");
  EXPECT_EQ(sel_rows.rows.size(), 5u);  // 5, 3, 9, 3, 7
  // ⋈ (equi + residual)
  OpPtr right = IntsLiteral("y", {3, 9, 9, 2});
  Predicate join_pred =
      Predicate::Single(Term::Col("x"), CmpOp::kEq, Term::Col("y"));
  MatTable join_rows =
      EvalBothWays(MakeJoin(lit, right, join_pred), doc, "equi join");
  EXPECT_EQ(join_rows.rows.size(), 4u);  // 3⋈3 twice, 9⋈9 twice
  // × with range predicate forced into the residual nested loop
  Predicate range_pred =
      Predicate::Single(Term::Col("x"), CmpOp::kLt, Term::Col("y"));
  EvalBothWays(MakeJoin(lit, right, range_pred), doc, "range join");
  EvalBothWays(MakeCross(lit, right), doc, "cross");
  // δ
  EvalBothWays(MakeDistinct(MakeProject(lit, {{"d", "x"}})), doc, "distinct");
  // ϱ
  EvalBothWays(MakeRank(lit, "rnk", {"x"}), doc, "rank");
  // Compiled query end to end (serialize root) on a real document.
  auto plan = testutil::CompileToPlan("//item[price > 10.0]/name", "site.xml");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EvalBothWays(plan.value(), doc, "compiled plan");
  auto row_seq = EvaluateToSequence(plan.value(), doc);
  ExecOptions copts;
  copts.use_columnar = true;
  auto col_seq = EvaluateToSequence(plan.value(), doc, copts);
  ASSERT_TRUE(row_seq.ok());
  ASSERT_TRUE(col_seq.ok());
  EXPECT_EQ(row_seq.value(), col_seq.value());
}

TEST(ColumnarExec, NullJoinKeysNeverMatch) {
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  // Left: ids 1, 2, NULL, NULL; right: ids 2, NULL, NULL, 3. A NULL key
  // must join with nothing — in particular not with another NULL.
  OpPtr left = MakeLiteral(
      {"k", "lv"}, {{Value::Int(1), Value::String("l1")},
                    {Value::Int(2), Value::String("l2")},
                    {Value::Null(), Value::String("l3")},
                    {Value::Null(), Value::String("l4")}});
  OpPtr right = MakeLiteral(
      {"q", "rv"}, {{Value::Int(2), Value::String("r1")},
                    {Value::Null(), Value::String("r2")},
                    {Value::Null(), Value::String("r3")},
                    {Value::Int(3), Value::String("r4")}});
  OpPtr join = MakeJoin(
      left, right, Predicate::Single(Term::Col("k"), CmpOp::kEq, Term::Col("q")));
  MatTable rows = EvalBothWays(join, doc, "null-key join");
  ASSERT_EQ(rows.rows.size(), 1u);  // only k=2 ⋈ q=2
  EXPECT_EQ(rows.rows[0][1].AsString(), "l2");
  EXPECT_EQ(rows.rows[0][3].AsString(), "r1");
}

TEST(ColumnarExec, NullKeysNeverMatchInPhysicalHashJoin) {
  // Engine-level regression: d0.value = d1.value over a document where
  // most rows have NULL value. NULL-valued rows must not pair up.
  xml::DocTable doc = testutil::LoadDoc(
      "v.xml", "<v><b>5</b><c>5</c><d>7</d><e><f>5</f></e></v>");
  auto db = Database::Build(doc);
  opt::JoinGraph graph;
  graph.num_aliases = 2;
  auto col_term = [](int alias, const char* col) {
    opt::QualTerm t;
    t.alias = alias;
    t.col = col;
    return t;
  };
  opt::QualTerm d0v = col_term(0, "value");
  opt::QualTerm d1v = col_term(1, "value");
  graph.predicates.push_back({d0v, CmpOp::kEq, d1v});
  graph.item = col_term(0, "pre");
  graph.select_list = {graph.item};
  // Expected pairs by brute force over the doc relation.
  std::vector<int64_t> expected;
  const int value_col = db->ColumnIndex("value");
  for (int64_t i = 0; i < db->row_count(); ++i) {
    for (int64_t j = 0; j < db->row_count(); ++j) {
      const Value a = db->Column(value_col).GetValue(static_cast<size_t>(i));
      const Value b = db->Column(value_col).GetValue(static_cast<size_t>(j));
      if (!a.is_null() && !b.is_null() && a == b) expected.push_back(i);
    }
  }
  std::sort(expected.begin(), expected.end());
  // Hand-built HSJOIN plan so the hash-join path itself is exercised (the
  // optimizer may otherwise prefer an index nested loop).
  PhysicalPlan plan;
  plan.graph = &graph;
  auto scan0 = std::make_unique<PhysNode>();
  scan0->kind = PhysKind::kTbScan;
  scan0->alias = 0;
  auto scan1 = std::make_unique<PhysNode>();
  scan1->kind = PhysKind::kTbScan;
  scan1->alias = 1;
  auto join = std::make_unique<PhysNode>();
  join->kind = PhysKind::kHsJoin;
  join->preds = graph.predicates;
  join->left = std::move(scan0);
  join->right = std::move(scan1);
  plan.root = std::move(join);
  for (bool columnar : {false, true}) {
    PlannerOptions popts;
    popts.use_columnar = columnar;
    auto seq = ExecutePlan(plan, *db, popts);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(seq.value(), expected) << (columnar ? "columnar" : "row");
  }
  // And the cost-based plan must agree as well.
  for (bool columnar : {false, true}) {
    PlannerOptions popts;
    popts.use_columnar = columnar;
    auto planned = PlanJoinGraph(graph, *db, popts);
    ASSERT_TRUE(planned.ok()) << planned.status().ToString();
    auto seq = ExecutePlan(planned.value(), *db, popts);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    EXPECT_EQ(seq.value(), expected)
        << (columnar ? "columnar planned" : "row planned");
  }
}

TEST(ColumnarExec, SharedSubPlansMaterializeOnce) {
  // Regression for the memo deep-copy bug: a sub-plan shared by two
  // parents must be materialized (and counted) exactly once.
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  OpPtr shared = IntsLiteral("n", {1, 2, 3, 4, 5});
  OpPtr left = MakeProject(shared, {{"x", "n"}});
  OpPtr right = MakeProject(shared, {{"y", "n"}});
  OpPtr cross = MakeCross(left, right);
  for (bool columnar : {false, true}) {
    ExecStats stats;
    ExecOptions options;
    options.use_columnar = columnar;
    options.stats = &stats;
    auto result = Evaluate(cross, doc, options);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().rows.size(), 25u);
    // shared (5) + two projections (5 + 5) + cross (25); the old
    // evaluator's per-hit deep copy would double the shared table.
    EXPECT_EQ(stats.tuples_materialized, 40)
        << (columnar ? "columnar" : "row");
    EXPECT_EQ(stats.rows_out, 25);
  }
}

}  // namespace
}  // namespace xqjg::engine
