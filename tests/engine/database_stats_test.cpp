// ColumnStats regression: the typed/dictionary statistics collectors
// must reproduce the pre-migration Value-based algorithm EXACTLY — the
// reference below is that algorithm verbatim, run over boxed per-cell
// Values via Column().GetValue() — on the XMark fixture and the tiny
// documents. Dictionary columns additionally pin the ndv-from-dictionary
// contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/data/xmark.h"
#include "src/engine/database.h"
#include "tests/testutil/fixtures.h"

namespace xqjg::engine {
namespace {

/// The seed storage layer's stats collector (pre-columnar): sort boxed
/// non-NULL Values, then derive ndv / min / max / bounds / frequencies.
ColumnStats ReferenceStats(const Database& db, int col,
                           bool want_frequent) {
  ColumnStats st;
  st.row_count = db.row_count();
  std::vector<Value> non_null;
  for (int64_t pre = 0; pre < db.row_count(); ++pre) {
    Value v = db.Column(col).GetValue(static_cast<size_t>(pre));
    if (!v.is_null()) non_null.push_back(std::move(v));
  }
  if (non_null.empty()) return st;
  std::sort(non_null.begin(), non_null.end(),
            [](const Value& a, const Value& b) { return a.SortLess(b); });
  st.min = non_null.front();
  st.max = non_null.back();
  int64_t ndv = 1;
  for (size_t i = 1; i < non_null.size(); ++i) {
    if (non_null[i - 1].SortLess(non_null[i])) ++ndv;
  }
  st.ndv = ndv;
  const size_t kBuckets = 32;
  for (size_t b = 1; b <= kBuckets; ++b) {
    st.bucket_bounds.push_back(
        non_null[std::min(non_null.size() - 1,
                          b * non_null.size() / kBuckets)]);
  }
  if (want_frequent) {
    for (const Value& v : non_null) st.frequent[v.ToString()]++;
  }
  return st;
}

void ExpectValueEq(const Value& a, const Value& b, const char* what) {
  EXPECT_TRUE(a.is_null() == b.is_null() && (a.is_null() || a == b))
      << what << ": " << a.ToString() << " vs " << b.ToString();
}

void ExpectStatsIdentical(const Database& db) {
  const auto& cols = EngineDocColumns();
  for (size_t c = 0; c < cols.size(); ++c) {
    const bool want_frequent = cols[c] == "kind" || cols[c] == "name";
    const ColumnStats expected =
        ReferenceStats(db, static_cast<int>(c), want_frequent);
    const ColumnStats& actual = db.Stats(static_cast<int>(c));
    SCOPED_TRACE(cols[c]);
    EXPECT_EQ(actual.row_count, expected.row_count);
    EXPECT_EQ(actual.ndv, expected.ndv);
    ExpectValueEq(actual.min, expected.min, "min");
    ExpectValueEq(actual.max, expected.max, "max");
    ASSERT_EQ(actual.bucket_bounds.size(), expected.bucket_bounds.size());
    for (size_t b = 0; b < expected.bucket_bounds.size(); ++b) {
      ExpectValueEq(actual.bucket_bounds[b], expected.bucket_bounds[b],
                    "bucket bound");
    }
    EXPECT_EQ(actual.frequent, expected.frequent);
  }
}

TEST(DatabaseStats, TypedCollectorsMatchBoxedReferenceOnXmark) {
  data::XmarkOptions options;
  options.scale = 0.08;
  xml::DocTable doc =
      testutil::LoadDoc("auction.xml", data::GenerateXmark(options));
  auto db = Database::Build(doc);
  ExpectStatsIdentical(*db);
}

TEST(DatabaseStats, TypedCollectorsMatchBoxedReferenceOnTinyDocs) {
  for (const char* xml :
       {testutil::TinyBibXml(), testutil::TinySiteXml(), "<r/>"}) {
    xml::DocTable doc = testutil::LoadDoc("t.xml", xml);
    auto db = Database::Build(doc);
    ExpectStatsIdentical(*db);
  }
}

TEST(DatabaseStats, DictionaryColumnsDeriveNdvFromTheDictionary) {
  xml::DocTable doc =
      testutil::LoadDoc("site.xml", testutil::TinySiteXml());
  auto db = Database::Build(doc);
  const int name_col = db->ColumnIndex("name");
  const ValueColumn& name = db->Column(name_col);
  ASSERT_EQ(name.tag(), ColumnTag::kDictString);
  // Every dictionary entry of a freshly built doc relation occurs in the
  // column, so ndv is exactly the dictionary size.
  EXPECT_EQ(db->Stats(name_col).ndv,
            static_cast<int64_t>(name.dict_size()));
  // The exact frequencies sum to the non-NULL row count.
  int64_t total = 0;
  for (const auto& [key, count] : db->Stats(name_col).frequent) {
    total += count;
  }
  EXPECT_EQ(total, db->row_count());
  // value is dictionary-encoded with NULLs and still produces stats.
  const int value_col = db->ColumnIndex("value");
  ASSERT_EQ(db->Column(value_col).tag(), ColumnTag::kDictString);
  EXPECT_GT(db->Stats(value_col).ndv, 0);
}

}  // namespace
}  // namespace xqjg::engine
