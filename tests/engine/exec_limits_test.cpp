// ExecLimits DNF guards: both budget knobs must surface Status::Timeout
// through every entry point (Evaluate, EvaluateToSequence, the processor
// facade) instead of crashing or looping — they emulate the paper's
// 20-hour cutoff, so tripping them is a supported outcome, not a fault.
#include <gtest/gtest.h>

#include "src/api/processor.h"
#include "src/engine/algebra_exec.h"
#include "src/xml/parser.h"
#include "tests/testutil/fixtures.h"

namespace xqjg::engine {
namespace {

using algebra::MakeCross;
using algebra::MakeLiteral;
using algebra::MakeProject;
using algebra::OpPtr;

OpPtr WideLiteral(const std::string& col, int rows) {
  std::vector<std::vector<Value>> data;
  data.reserve(rows);
  for (int i = 0; i < rows; ++i) data.push_back({Value::Int(i)});
  return MakeProject(MakeLiteral({"n"}, std::move(data)), {{col, "n"}});
}

TEST(ExecLimits, TimeoutReturnsStatusTimeout) {
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  // 500x500 cross product; the 1µs budget is over before the first
  // operator materializes, so CheckBudget trips instead of crashing.
  OpPtr cross = MakeCross(WideLiteral("a", 500), WideLiteral("b", 500));
  ExecLimits limits;
  limits.timeout_seconds = 1e-6;
  auto result = Evaluate(cross, doc, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status().ToString();
}

TEST(ExecLimits, RowBudgetReturnsStatusTimeout) {
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  OpPtr cross = MakeCross(WideLiteral("a", 100), WideLiteral("b", 100));
  ExecLimits limits;
  limits.max_intermediate_rows = 50;
  auto result = Evaluate(cross, doc, limits);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status().ToString();
}

TEST(ExecLimits, NonPositiveLimitsMeanUnlimited) {
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  OpPtr cross = MakeCross(WideLiteral("a", 40), WideLiteral("b", 40));
  ExecLimits limits;
  limits.timeout_seconds = 0;
  limits.max_intermediate_rows = 0;
  auto result = Evaluate(cross, doc, limits);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 1600u);
}

TEST(ExecLimits, RowBudgetGuardsCompiledQuery) {
  xml::DocTable doc = testutil::LoadDoc("site.xml", testutil::TinySiteXml());
  auto plan = testutil::CompileToPlan("doc(\"site.xml\")//item", "site.xml");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExecLimits limits;
  limits.max_intermediate_rows = 2;  // doc relation alone exceeds this
  auto seq = EvaluateToSequence(plan.value(), doc, limits);
  ASSERT_FALSE(seq.ok());
  EXPECT_EQ(seq.status().code(), StatusCode::kTimeout)
      << seq.status().ToString();
  // The same plan without limits must still evaluate (guard is not sticky).
  auto ok = EvaluateToSequence(plan.value(), doc, {});
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().size(), 3u);
}

TEST(ExecLimits, ProcessorTimeoutSurfacesInStackedMode) {
  api::XQueryProcessor processor;
  ASSERT_TRUE(processor
                  .LoadDocument("site.xml", testutil::TinySiteXml())
                  .ok());
  api::RunOptions options;
  options.mode = api::Mode::kStacked;
  options.context_document = "site.xml";
  options.timeout_seconds = 1e-9;
  auto result = processor.Run("//item[price > 10.0]/name", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status().ToString();
}

TEST(ExecLimits, ColumnarExecutorHonorsBothBudgets) {
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  OpPtr cross = MakeCross(WideLiteral("a", 200), WideLiteral("b", 200));
  ExecOptions timeout;
  timeout.use_columnar = true;
  timeout.limits.timeout_seconds = 1e-6;
  auto timed = Evaluate(cross, doc, timeout);
  ASSERT_FALSE(timed.ok());
  EXPECT_EQ(timed.status().code(), StatusCode::kTimeout);
  ExecOptions rows;
  rows.use_columnar = true;
  rows.limits.max_intermediate_rows = 50;
  auto bounded = Evaluate(cross, doc, rows);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kTimeout);
  // Unlimited still evaluates, identically to the row executor.
  ExecOptions unlimited;
  unlimited.use_columnar = true;
  auto ok = Evaluate(cross, doc, unlimited);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows.size(), 40000u);
}

TEST(ExecLimits, RankAndSerializeLoopsHonorTheDeadline) {
  // Sort-heavy operators (ϱ and the serialize tail) must surface Timeout
  // through both executors instead of sorting past the budget.
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  OpPtr ranked = algebra::MakeRank(WideLiteral("a", 5000), "rnk", {"a"});
  for (bool columnar : {false, true}) {
    ExecOptions options;
    options.use_columnar = columnar;
    options.limits.timeout_seconds = 1e-9;
    auto result = Evaluate(ranked, doc, options);
    ASSERT_FALSE(result.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  }
  xml::DocTable site = testutil::LoadDoc("site.xml", testutil::TinySiteXml());
  auto plan = testutil::CompileToPlan("doc(\"site.xml\")//item", "site.xml");
  ASSERT_TRUE(plan.ok());
  for (bool columnar : {false, true}) {
    ExecOptions options;
    options.use_columnar = columnar;
    options.limits.timeout_seconds = 1e-9;
    auto seq = EvaluateToSequence(plan.value(), site, options);
    ASSERT_FALSE(seq.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(seq.status().code(), StatusCode::kTimeout);
  }
}

TEST(ExecLimits, PhysicalPlanExecutorsHonorTheDeadline) {
  // The cost-based engine (row and columnar): Timeout must surface through
  // the processor facade's join-graph mode.
  api::XQueryProcessor processor;
  ASSERT_TRUE(processor
                  .LoadDocument("site.xml", testutil::TinySiteXml())
                  .ok());
  for (bool columnar : {false, true}) {
    api::RunOptions options;
    options.mode = api::Mode::kJoinGraph;
    options.context_document = "site.xml";
    options.timeout_seconds = 1e-9;
    options.use_columnar = columnar;
    auto result = processor.Run("//item[price > 10.0]/name", options);
    ASSERT_FALSE(result.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
        << result.status().ToString();
  }
}

TEST(ExecLimits, PhysicalPlanExecutorsHonorTheRowBudget) {
  // max_intermediate_rows through the cost-based engine (both the row and
  // the columnar plan executor). Without relational indexes the plan is
  // TBSCAN + NLJOIN (table-scan and join-loop guard points); with the
  // Table VI set it probes IXSCANs (B-tree callback guard point).
  for (bool with_indexes : {false, true}) {
    api::XQueryProcessor processor;
    ASSERT_TRUE(processor
                    .LoadDocument("site.xml", testutil::TinySiteXml())
                    .ok());
    if (with_indexes) {
      ASSERT_TRUE(processor.CreateRelationalIndexes().ok());
    }
    api::PrepareOptions prep;
    prep.context_document = "site.xml";
    auto prepared = processor.Prepare("//item[price > 10.0]/name", prep);
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    ASSERT_TRUE(prepared.value()->has_plan);
    for (bool columnar : {false, true}) {
      api::ExecuteOptions bounded;
      bounded.use_columnar = columnar;
      bounded.limits.max_intermediate_rows = 1;
      auto result = processor.ExecuteAll(prepared.value(), bounded);
      ASSERT_FALSE(result.ok())
          << (with_indexes ? "indexed" : "bare") << "/"
          << (columnar ? "columnar" : "row");
      EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
          << result.status().ToString();
      // The budget is per execution: the same plan still runs unlimited.
      auto ok = processor.ExecuteAll(prepared.value(),
                                     api::ExecuteOptions{});
      ASSERT_TRUE(ok.ok()) << ok.status().ToString();
      EXPECT_GT(ok.value().result_count(), 1u);
    }
  }
}

TEST(ExecLimits, LateMaterializedFilterChainsHonorBothBudgets) {
  // A σ∘σ∘δ chain runs as selection vectors in the columnar executor
  // (no gathers until the tail); both budget knobs must still trip inside
  // the selection loops, and the row executor stays the oracle.
  xml::DocTable doc = testutil::LoadDoc("x", "<x/>");
  OpPtr lit = WideLiteral("a", 5000);
  using algebra::MakeSelect;
  using algebra::Predicate;
  using algebra::Term;
  OpPtr chain = MakeSelect(
      MakeSelect(algebra::MakeDistinct(lit),
                 Predicate::Single(Term::Col("a"), algebra::CmpOp::kGt,
                                   Term::Const(Value::Int(10)))),
      Predicate::Single(Term::Col("a"), algebra::CmpOp::kLt,
                        Term::Const(Value::Int(4000))));
  for (bool columnar : {false, true}) {
    ExecOptions timeout;
    timeout.use_columnar = columnar;
    timeout.limits.timeout_seconds = 1e-9;
    auto timed = Evaluate(chain, doc, timeout);
    ASSERT_FALSE(timed.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(timed.status().code(), StatusCode::kTimeout);
    ExecOptions rows;
    rows.use_columnar = columnar;
    rows.limits.max_intermediate_rows = 100;
    auto bounded = Evaluate(chain, doc, rows);
    ASSERT_FALSE(bounded.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(bounded.status().code(), StatusCode::kTimeout);
  }
  // Unlimited: both executors agree through the lazy chain.
  auto row = Evaluate(chain, doc, ExecOptions{});
  ExecOptions copts;
  copts.use_columnar = true;
  auto col = Evaluate(chain, doc, copts);
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(col.ok());
  EXPECT_EQ(row.value().rows.size(), col.value().rows.size());
  EXPECT_EQ(row.value().rows.size(), 3989u);  // values 11..3999
}

TEST(ExecLimits, DeferredGatherBoundariesHonorBudgets) {
  // A compiled query's σ/π chain stays lazy until the serialize sort —
  // the gather boundary. Budgets must surface through the full pipeline
  // (and through the dictionary-code name filters) in both executors.
  xml::DocTable site = testutil::LoadDoc("site.xml", testutil::TinySiteXml());
  auto plan =
      testutil::CompileToPlan("doc(\"site.xml\")//item[price > 10.0]/name",
                              "site.xml");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  for (bool columnar : {false, true}) {
    ExecOptions timeout;
    timeout.use_columnar = columnar;
    timeout.limits.timeout_seconds = 1e-9;
    auto timed = EvaluateToSequence(plan.value(), site, timeout);
    ASSERT_FALSE(timed.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(timed.status().code(), StatusCode::kTimeout);
    ExecOptions rows;
    rows.use_columnar = columnar;
    rows.limits.max_intermediate_rows = 2;  // doc relation alone exceeds
    auto bounded = EvaluateToSequence(plan.value(), site, rows);
    ASSERT_FALSE(bounded.ok()) << (columnar ? "columnar" : "row");
    EXPECT_EQ(bounded.status().code(), StatusCode::kTimeout);
    auto ok = EvaluateToSequence(plan.value(), site, ExecOptions{});
    ASSERT_TRUE(ok.ok());
    EXPECT_EQ(ok.value().size(), 2u);  // clock (12.5) and lamp (30.0)
  }
}

TEST(ExecLimits, PhysicalPlanNamePredicatesHonorTheRowBudget) {
  // The compiled dict-code equality quals of the physical-plan executors
  // (name = '...') sit inside every scan probe; the row budget must trip
  // there with and without B-tree indexes, row and columnar.
  for (bool with_indexes : {false, true}) {
    api::XQueryProcessor processor;
    ASSERT_TRUE(processor
                    .LoadDocument("site.xml", testutil::TinySiteXml())
                    .ok());
    if (with_indexes) {
      ASSERT_TRUE(processor.CreateRelationalIndexes().ok());
    }
    for (bool columnar : {false, true}) {
      api::RunOptions options;
      options.mode = api::Mode::kJoinGraph;
      options.context_document = "site.xml";
      options.use_columnar = columnar;
      auto ok = processor.Run("//regions//item/name", options);
      ASSERT_TRUE(ok.ok()) << ok.status().ToString();
      EXPECT_EQ(ok.value().result_count(), 3u);
      api::RunOptions bounded = options;
      bounded.timeout_seconds = 1e-9;
      auto timed = processor.Run("//regions//item/name", bounded);
      ASSERT_FALSE(timed.ok())
          << (with_indexes ? "indexed" : "bare") << "/"
          << (columnar ? "columnar" : "row");
      EXPECT_EQ(timed.status().code(), StatusCode::kTimeout);
    }
  }
}

TEST(ExecLimits, ColumnarStackedModeSurfacesTimeout) {
  api::XQueryProcessor processor;
  ASSERT_TRUE(processor
                  .LoadDocument("site.xml", testutil::TinySiteXml())
                  .ok());
  api::RunOptions options;
  options.mode = api::Mode::kStacked;
  options.context_document = "site.xml";
  options.timeout_seconds = 1e-9;
  options.use_columnar = true;
  auto result = processor.Run("//item[price > 10.0]/name", options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status().ToString();
}

}  // namespace
}  // namespace xqjg::engine
