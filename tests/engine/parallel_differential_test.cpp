// Morsel-driven parallel execution: differential and budget coverage.
//
// The columnar executors accept a `threads` knob and split their
// row-producing loops into morsels claimed from a shared counter, with
// per-morsel outputs merged in morsel order — so results must be
// BIT-IDENTICAL at any worker count, to each other and to the serial row
// oracle. This suite pins that contract at threads ∈ {1, 2, 8} over the
// paper queries (XMark/DBLP instances) and seeded random documents large
// enough to cross the parallel cutoff, and it regression-tests the
// cooperative DNF budget: a max_intermediate_rows abort must surface
// promptly (and with the row-budget error, not a generic one) even when
// N workers produce rows concurrently. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"
#include "src/engine/exec_options.h"
#include "tests/testutil/differential.h"
#include "tests/testutil/fixtures.h"

namespace xqjg {
namespace {

const int kThreadCounts[] = {1, 2, 8};

// ---------------------------------------------------------------------------
// RegionBudget / worker-clock unit coverage (satellite: budget-clock race).

TEST(RegionBudget, SerialClockSemanticsAreUnchanged) {
  engine::ExecLimits limits;
  limits.max_intermediate_rows = 10;
  engine::BudgetClock clock(limits);
  EXPECT_TRUE(clock.TickRows(10).ok());
  EXPECT_FALSE(clock.RowsExceeded(10));
  auto st = clock.TickRows(11);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_NE(st.message().find("exceeds 10 rows"), std::string::npos)
      << st.ToString();
  EXPECT_FALSE(clock.RegionAborted());
}

TEST(RegionBudget, WorkerClocksShareOneRowBudget) {
  engine::ExecLimits limits;
  limits.max_intermediate_rows = 1000;
  engine::BudgetClock parent(limits);
  engine::RegionBudget region(parent);

  // Two workers each produce 600 rows into private containers: neither
  // exceeds the budget alone, together they must. The flush stride means
  // a worker only sees the joint total every 256 rows — drive both past
  // a flush boundary and the second FinishLocalRows must report the
  // joint overrun.
  engine::BudgetClock w1 = region.Worker();
  engine::BudgetClock w2 = region.Worker();
  for (int64_t r = 1; r <= 600; ++r) ASSERT_TRUE(w1.TickRows(r).ok());
  ASSERT_TRUE(w1.FinishLocalRows(600).ok());  // 600 total: under budget
  Status second = Status::OK();
  for (int64_t r = 1; r <= 600 && second.ok(); ++r) {
    second = w2.TickRows(r);
  }
  if (second.ok()) second = w2.FinishLocalRows(600);
  ASSERT_FALSE(second.ok());  // 1200 joint rows > 1000
  EXPECT_EQ(second.code(), StatusCode::kTimeout);
  EXPECT_NE(second.message().find("exceeds 1000 rows"), std::string::npos);
}

TEST(RegionBudget, AbortLatchStopsEveryWorkerAndFirstErrorWins) {
  engine::BudgetClock parent((engine::ExecLimits()));
  engine::RegionBudget region(parent);
  engine::BudgetClock w1 = region.Worker();
  EXPECT_TRUE(w1.Tick().ok());  // nothing aborted yet

  region.Abort(Status::Internal("first"));
  region.Abort(Status::Internal("second"));  // latch is set-once
  auto st = region.status();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("first"), std::string::npos);

  // Every worker clock observes the latch on its next Tick.
  engine::BudgetClock w2 = region.Worker();
  EXPECT_TRUE(w1.RegionAborted());
  EXPECT_FALSE(w1.Tick().ok());
  EXPECT_FALSE(w2.Tick().ok());
}

TEST(RegionBudget, ConcurrentWorkersAbortPromptlyAcrossThreads) {
  // The race regression distilled: N real threads hammer one region's
  // joint row counter. The budget must trip (no lost updates letting the
  // joint total run away), every thread must stop, and the error must be
  // the row-budget message. Run under TSan in CI.
  constexpr int kWorkers = 8;
  constexpr int64_t kBudget = 10 * 1000;
  engine::ExecLimits limits;
  limits.max_intermediate_rows = kBudget;
  engine::BudgetClock parent(limits);
  engine::RegionBudget region(parent);

  std::atomic<int64_t> produced{0};
  std::vector<std::thread> pool;
  for (int t = 0; t < kWorkers; ++t) {
    pool.emplace_back([&region, &produced]() {
      engine::BudgetClock clock = region.Worker();
      // Each "morsel" produces 512 rows into a fresh local container,
      // mirroring how the executors re-vend worker clocks per morsel.
      for (int morsel = 0; morsel < 64; ++morsel) {
        engine::BudgetClock wclock = region.Worker();
        for (int64_t r = 1; r <= 512; ++r) {
          Status st = wclock.TickRows(r);
          if (!st.ok()) {
            region.Abort(st);
            return;
          }
          produced.fetch_add(1, std::memory_order_relaxed);
        }
        Status st = wclock.FinishLocalRows(512);
        if (!st.ok()) {
          region.Abort(st);
          return;
        }
      }
      (void)clock;
    });
  }
  for (auto& thread : pool) thread.join();

  auto st = region.status();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
  EXPECT_NE(st.message().find("exceeds"), std::string::npos) << st.ToString();
  // Prompt abort: overshoot is bounded by workers × flush stride (256)
  // plus one in-flight morsel (512) per worker — not by total work
  // (8 × 64 × 512 ≈ 262k rows would mean the latch was ignored).
  EXPECT_LT(produced.load(), kBudget + kWorkers * (256 + 512))
      << "workers kept producing after the joint budget tripped";
}

// ---------------------------------------------------------------------------
// End-to-end: paper queries, every relational lane, threads ∈ {1, 2, 8}.

class ParallelPaperQueries : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    processor_ = new api::XQueryProcessor();
    data::XmarkOptions xmark;
    xmark.scale = 0.1;
    ASSERT_TRUE(processor_
                    ->LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                   api::XmarkSegmentTags())
                    .ok());
    data::DblpOptions dblp;
    dblp.publications = 400;
    ASSERT_TRUE(processor_
                    ->LoadDocument("dblp.xml", data::GenerateDblp(dblp),
                                   api::DblpSegmentTags())
                    .ok());
    ASSERT_TRUE(processor_->CreateRelationalIndexes().ok());
  }
  static void TearDownTestSuite() {
    delete processor_;
    processor_ = nullptr;
  }

  static api::XQueryProcessor* processor_;
};

api::XQueryProcessor* ParallelPaperQueries::processor_ = nullptr;

TEST_F(ParallelPaperQueries, EveryThreadCountMatchesTheRowOracle) {
  for (const auto& q : api::PaperQueries()) {
    // The serial row executor is the oracle; it ignores `threads`.
    api::RunOptions oracle_options;
    oracle_options.timeout_seconds = 120;
    oracle_options.mode = api::Mode::kJoinGraph;
    oracle_options.context_document = q.document;
    auto oracle = processor_->Run(q.text, oracle_options);
    ASSERT_TRUE(oracle.ok()) << q.id << ": " << oracle.status().ToString();

    for (api::Mode mode : {api::Mode::kStacked, api::Mode::kJoinGraph}) {
      for (int threads : kThreadCounts) {
        api::RunOptions options;
        options.timeout_seconds = 120;
        options.mode = mode;
        options.context_document = q.document;
        options.use_columnar = true;
        options.threads = threads;
        auto result = processor_->Run(q.text, options);
        ASSERT_TRUE(result.ok())
            << q.id << " " << api::ModeToString(mode) << " threads="
            << threads << ": " << result.status().ToString();
        EXPECT_EQ(result.value().items, oracle.value().items)
            << q.id << " " << api::ModeToString(mode)
            << " diverges at threads=" << threads;
      }
    }
  }
}

TEST_F(ParallelPaperQueries, RowBudgetAbortsPromptlyAcrossWorkers) {
  // End-to-end satellite regression: a tiny max_intermediate_rows budget
  // must abort a multi-worker columnar execution with the row-budget
  // Timeout — the workers share one joint counter, so N workers cannot
  // each privately stay under a budget they jointly exceed.
  const api::PaperQuery& q2 = api::PaperQueries()[1];
  auto prepared = [&](api::Mode mode) {
    api::PrepareOptions prep;
    prep.mode = mode;
    prep.context_document = q2.document;
    return processor_->Prepare(q2.text, prep);
  };
  for (api::Mode mode : {api::Mode::kStacked, api::Mode::kJoinGraph}) {
    auto pq = prepared(mode);
    ASSERT_TRUE(pq.ok()) << pq.status().ToString();
    for (int threads : {2, 8}) {
      api::ExecuteOptions exec;
      exec.limits.timeout_seconds = 120;
      exec.limits.max_intermediate_rows = 64;
      exec.use_columnar = true;
      exec.threads = threads;
      auto result = processor_->ExecuteAll(pq.value(), exec);
      ASSERT_FALSE(result.ok())
          << api::ModeToString(mode) << " threads=" << threads
          << ": expected a row-budget DNF";
      EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
          << result.status().ToString();
      EXPECT_NE(result.status().message().find("rows (DNF)"),
                std::string::npos)
          << result.status().ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized differential: seeded documents big enough to cross the
// executors' parallel cutoff (kParallelRowCutoff = 2048 doc-relation
// rows), every lane × thread count agreeing with the native reference.

class ParallelFuzzSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelFuzzSeed, AllLanesAgreeAtEveryThreadCount) {
  const uint64_t doc_seed = GetParam();
  // ~3000 nodes: comfortably past the 2048-row cutoff, so the morsel
  // paths (not just the serial fallbacks) are what's being compared.
  const std::string xml = testutil::RandomXml(doc_seed, 3000);
  testutil::DifferentialHarness harness("fuzz.xml", xml);
  for (uint64_t q = 0; q < 4; ++q) {
    const uint64_t query_seed = doc_seed * 1013 + q;
    const std::string query = testutil::RandomQuery(query_seed, "fuzz.xml");
    for (int threads : kThreadCounts) {
      EXPECT_TRUE(harness.Check(query, threads))
          << "doc seed " << doc_seed << ", query seed " << query_seed
          << ", threads " << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzzSeed,
                         ::testing::Values(21u, 22u, 23u));

}  // namespace
}  // namespace xqjg
