// Engine tests: database build/statistics, access-path selection through
// plans, DP vs greedy agreement, explain rendering, timeouts.
#include <gtest/gtest.h>

#include "src/compiler/compile.h"
#include "src/data/xmark.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::engine {
namespace {

class PlannerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    doc_ = new xml::DocTable();
    data::XmarkOptions options;
    options.scale = 0.05;
    ASSERT_TRUE(xml::LoadDocument(doc_, "auction.xml",
                                  data::GenerateXmark(options))
                    .ok());
    db_ = Database::Build(*doc_).release();
    for (const auto& def : TableVIIndexes()) {
      ASSERT_TRUE(db_->CreateIndex(def).ok());
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    delete doc_;
  }

  static Result<opt::JoinGraph> Graph(const std::string& query) {
    XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
    xquery::NormalizeOptions nopts;
    nopts.context_document = "auction.xml";
    XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr core,
                          xquery::Normalize(ast, nopts));
    XQJG_ASSIGN_OR_RETURN(algebra::OpPtr plan, compiler::CompileQuery(core));
    XQJG_ASSIGN_OR_RETURN(opt::IsolationResult iso, opt::Isolate(plan));
    return opt::ExtractJoinGraph(iso.isolated);
  }

  static xml::DocTable* doc_;
  static Database* db_;
};

xml::DocTable* PlannerTest::doc_ = nullptr;
Database* PlannerTest::db_ = nullptr;

TEST_F(PlannerTest, DatabaseStatistics) {
  EXPECT_EQ(db_->row_count(), doc_->row_count());
  const ColumnStats& name = db_->Stats(db_->ColumnIndex("name"));
  EXPECT_GT(name.ndv, 10);
  // name frequencies are exact
  ASSERT_TRUE(name.frequent.count("open_auction"));
  double sel = name.EqSelectivity(Value::String("open_auction"));
  EXPECT_GT(sel, 0.0);
  EXPECT_LT(sel, 0.2);
  // pre is unique
  const ColumnStats& pre = db_->Stats(db_->ColumnIndex("pre"));
  EXPECT_EQ(pre.ndv, db_->row_count());
  EXPECT_LT(pre.RangeSelectivity(Value::Int(0),
                                 Value::Int(db_->row_count() / 10)),
            0.25);
}

TEST_F(PlannerTest, IndexCreationRejectsUnknownColumns) {
  Database db2;  // empty database
  (void)db2;
  auto db = Database::Build(*doc_);
  EXPECT_FALSE(db->CreateIndex({"bad", {"nonexistent"}, {}, false}).ok());
  EXPECT_TRUE(db->CreateIndex({"ok", {"name", "pre"}, {}, false}).ok());
  EXPECT_EQ(db->indexes().size(), 1u);
  EXPECT_EQ(db->indexes()[0]->tree.size(),
            static_cast<size_t>(doc_->row_count()));
}

TEST_F(PlannerTest, SelectiveQueryStartsAtValueIndex) {
  auto graph = Graph("//person[@id = \"person0\"]/name");
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  auto plan = PlanJoinGraph(graph.value(), *db_);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string explain = ExplainPlan(plan.value());
  // The @id test must be served by an index probe (value-prefixed vnlkp
  // or owner-resolving qnkp, depending on estimated selectivities) — not
  // by a table scan.
  EXPECT_TRUE(explain.find("vnlkp") != std::string::npos ||
              explain.find("qnkp") != std::string::npos)
      << explain;
  EXPECT_EQ(explain.find("TBSCAN"), std::string::npos) << explain;
  EXPECT_NE(explain.find("SORT (distinct)"), std::string::npos);
}

TEST_F(PlannerTest, DpAndGreedyAndSyntacticAgreeOnResults) {
  const char* queries[] = {
      "//open_auction[bidder]",
      "//closed_auction[price > 100]/price",
      "//item[incategory]/name",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    auto graph = Graph(q);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    auto dp_plan = PlanJoinGraph(graph.value(), *db_);
    ASSERT_TRUE(dp_plan.ok());
    auto dp_result = ExecutePlan(dp_plan.value(), *db_);
    ASSERT_TRUE(dp_result.ok());

    PlannerOptions syntactic;
    syntactic.syntactic_order = true;
    auto naive_plan = PlanJoinGraph(graph.value(), *db_, syntactic);
    ASSERT_TRUE(naive_plan.ok());
    auto naive_result = ExecutePlan(naive_plan.value(), *db_, syntactic);
    ASSERT_TRUE(naive_result.ok());
    EXPECT_EQ(dp_result.value(), naive_result.value());
  }
}

TEST_F(PlannerTest, NoIndexesFallsBackToScansCorrectly) {
  auto graph = Graph("//open_auction[bidder]");
  ASSERT_TRUE(graph.ok());
  auto with_plan = PlanJoinGraph(graph.value(), *db_);
  ASSERT_TRUE(with_plan.ok());
  auto expected = ExecutePlan(with_plan.value(), *db_);
  ASSERT_TRUE(expected.ok());

  auto bare = Database::Build(*doc_);
  auto plan = PlanJoinGraph(graph.value(), *bare);
  ASSERT_TRUE(plan.ok());
  EXPECT_NE(ExplainPlan(plan.value()).find("TBSCAN"), std::string::npos);
  auto result = ExecutePlan(plan.value(), *bare);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), expected.value());
}

TEST_F(PlannerTest, TimeoutReportsDnf) {
  auto graph = Graph("//item/incategory/@category");
  ASSERT_TRUE(graph.ok());
  auto bare = Database::Build(*doc_);  // no indexes: slow scans
  PlannerOptions options;
  options.limits.timeout_seconds = 1e-9;
  auto plan = PlanJoinGraph(graph.value(), *bare, options);
  ASSERT_TRUE(plan.ok());
  auto result = ExecutePlan(plan.value(), *bare, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

TEST_F(PlannerTest, AdvisorCoversWorkloadFeatures) {
  auto g1 = Graph("//closed_auction[price > 500]");
  auto g2 = Graph("//person[@id = \"person0\"]/name");
  ASSERT_TRUE(g1.ok());
  ASSERT_TRUE(g2.ok());
  auto proposed = AdviseIndexes({&g1.value(), &g2.value()});
  std::set<std::string> names;
  for (const auto& def : proposed) names.insert(def.name);
  EXPECT_TRUE(names.count("nkspl"));  // name tests + pre ranges
  EXPECT_TRUE(names.count("nlkp"));   // child steps
  EXPECT_TRUE(names.count("nkdlp"));  // decimal comparison (price > 500)
  EXPECT_TRUE(names.count("vnlkp"));  // string value comparison (@id = ..)
  EXPECT_TRUE(names.count("qnkp"));   // attribute/owner joins
}

TEST_F(PlannerTest, TableVIIndexesBuildEverywhere) {
  auto db = Database::Build(*doc_);
  for (const auto& def : TableVIIndexes()) {
    EXPECT_TRUE(db->CreateIndex(def).ok()) << def.ToString();
  }
  EXPECT_EQ(db->indexes().size(), TableVIIndexes().size());
}

}  // namespace
}  // namespace xqjg::engine
