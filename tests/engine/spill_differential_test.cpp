// Memory-governed execution: spill differential and budget coverage.
//
// The columnar executors charge their live state against
// ExecLimits::max_memory_bytes and move breaker state to disk when the
// governor says so (engine/spill.h): sorts flush sorted runs, hash-join
// build sides go Grace-partitioned. The contract under test is that a
// budget NEVER changes an answer — results must be BIT-IDENTICAL at a
// spill-forcing budget, a moderate budget, and no budget, at every
// worker count, to each other and to the serial row oracle — and that
// the spill machinery actually engages (spill_events) when forced.
// Also pins two unit contracts: the shared external sorter reproduces a
// stable in-memory sort across runs, and a worker clock's TickThrow
// observes the region abort latch immediately (regression: it used to
// consult only the local deadline, so sort comparators kept running
// after a sibling worker hit a budget).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/common/value.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"
#include "src/engine/database.h"
#include "src/engine/exec_options.h"
#include "src/engine/planner.h"
#include "src/engine/spill.h"
#include "src/opt/join_graph.h"
#include "src/xml/parser.h"

namespace xqjg {
namespace {

/// Forces every governed breaker past its threshold on the test corpus.
constexpr int64_t kTinyBudget = 16 * 1024;
/// {spill-forcing, moderate, unlimited} — the answer must not care.
const int64_t kBudgets[] = {kTinyBudget, 4 * 1024 * 1024, 0};
const int kThreadCounts[] = {1, 8};

// ---------------------------------------------------------------------------
// Unit coverage.

TEST(BudgetClockAbort, TickThrowObservesTheRegionLatchImmediately) {
  // A sort comparator ticks via TickThrow. Once any worker aborts the
  // region, the very next TickThrow on a sibling clock must throw — not
  // only after the 4096-call deadline stride — or a spilling sort keeps
  // grinding through a run flush nobody will read.
  engine::BudgetClock parent((engine::ExecLimits()));
  engine::RegionBudget region(parent);
  engine::BudgetClock worker = region.Worker();
  EXPECT_NO_THROW(worker.TickThrow());  // nothing aborted yet

  region.Abort(Status::Timeout("sibling hit a budget"));
  EXPECT_THROW(worker.TickThrow(), engine::BudgetExhausted);
  // And it stays latched for clocks vended after the abort too.
  engine::BudgetClock late = region.Worker();
  EXPECT_THROW(late.TickThrow(), engine::BudgetExhausted);
}

TEST(ExternalValueSorter, SpilledMergeEqualsStableInMemorySort) {
  // Rows keyed on column 0 with heavy duplication; column 1 is the input
  // position, NOT a sort key — if the run merge (with its run-index
  // tie-break) reproduces a stable sort, positions within each key stay
  // ascending.
  constexpr int kRows = 5000;  // several runs at this budget
  engine::ExecLimits limits;
  limits.max_memory_bytes = 8 * 1024;
  engine::BudgetClock clock(limits);
  engine::MemoryBudget budget(limits.max_memory_bytes);
  engine::ExecStats stats;
  engine::ExternalValueSorter sorter(&clock, &budget, &stats, /*arity=*/2,
                                     /*keys=*/{0});
  for (int r = 0; r < kRows; ++r) {
    std::vector<Value> row;
    row.push_back(Value::Int((r * 7919) % 13));  // 13 key groups
    row.push_back(Value::Int(r));
    ASSERT_TRUE(sorter.Add(std::move(row)).ok());
  }
  ASSERT_TRUE(sorter.Finish().ok());
  ASSERT_TRUE(sorter.spilled());
  EXPECT_GT(stats.spill_events, 0);
  EXPECT_GT(stats.spill_bytes, 0);

  int64_t prev_key = -1, prev_pos = -1, seen = 0;
  std::vector<Value> row;
  for (;;) {
    auto more = sorter.Next(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.value()) break;
    const int64_t key = row[0].AsInt();
    const int64_t pos = row[1].AsInt();
    ASSERT_GE(key, prev_key) << "merge emitted keys out of order";
    if (key == prev_key) {
      ASSERT_GT(pos, prev_pos) << "stability lost within key " << key;
    }
    prev_key = key;
    prev_pos = pos;
    ++seen;
  }
  EXPECT_EQ(seen, kRows);
}

// ---------------------------------------------------------------------------
// End-to-end differential: paper queries, relational lanes, every budget.

class SpillPaperQueries : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    processor_ = new api::XQueryProcessor();
    data::XmarkOptions xmark;
    xmark.scale = 0.1;
    ASSERT_TRUE(processor_
                    ->LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                   api::XmarkSegmentTags())
                    .ok());
    data::DblpOptions dblp;
    dblp.publications = 400;
    ASSERT_TRUE(processor_
                    ->LoadDocument("dblp.xml", data::GenerateDblp(dblp),
                                   api::DblpSegmentTags())
                    .ok());
    ASSERT_TRUE(processor_->CreateRelationalIndexes().ok());
  }
  static void TearDownTestSuite() {
    delete processor_;
    processor_ = nullptr;
  }

  static api::XQueryProcessor* processor_;
};

api::XQueryProcessor* SpillPaperQueries::processor_ = nullptr;

TEST_F(SpillPaperQueries, EveryBudgetMatchesTheRowOracle) {
  for (const auto& q : api::PaperQueries()) {
    // The serial row executor under no memory budget is the oracle.
    api::RunOptions oracle_options;
    oracle_options.timeout_seconds = 120;
    oracle_options.mode = api::Mode::kJoinGraph;
    oracle_options.context_document = q.document;
    auto oracle = processor_->Run(q.text, oracle_options);
    ASSERT_TRUE(oracle.ok()) << q.id << ": " << oracle.status().ToString();

    for (api::Mode mode : {api::Mode::kStacked, api::Mode::kJoinGraph}) {
      api::PrepareOptions prep;
      prep.mode = mode;
      prep.context_document = q.document;
      auto pq = processor_->Prepare(q.text, prep);
      ASSERT_TRUE(pq.ok()) << q.id << ": " << pq.status().ToString();
      for (int threads : kThreadCounts) {
        for (int64_t budget : kBudgets) {
          api::ExecuteOptions exec;
          exec.limits.timeout_seconds = 120;
          exec.limits.max_memory_bytes = budget;
          exec.use_columnar = true;
          exec.threads = threads;
          auto result = processor_->ExecuteAll(pq.value(), exec);
          ASSERT_TRUE(result.ok())
              << q.id << " " << api::ModeToString(mode) << " threads="
              << threads << " budget=" << budget << ": "
              << result.status().ToString();
          EXPECT_EQ(result.value().items, oracle.value().items)
              << q.id << " " << api::ModeToString(mode)
              << " diverges at threads=" << threads << " budget=" << budget;
        }
      }
    }
  }
}

TEST_F(SpillPaperQueries, TinyBudgetActuallySpillsSomewhere) {
  // The differential above would pass vacuously if ShouldSpill() never
  // fired. Across the paper queries at the tiny budget, at least one
  // execution must have moved state to disk.
  int64_t total_spill_events = 0;
  for (const auto& q : api::PaperQueries()) {
    for (api::Mode mode : {api::Mode::kStacked, api::Mode::kJoinGraph}) {
      api::PrepareOptions prep;
      prep.mode = mode;
      prep.context_document = q.document;
      auto pq = processor_->Prepare(q.text, prep);
      ASSERT_TRUE(pq.ok()) << pq.status().ToString();
      api::ExecuteOptions exec;
      exec.limits.timeout_seconds = 120;
      exec.limits.max_memory_bytes = kTinyBudget;
      exec.use_columnar = true;
      auto cursor = processor_->Execute(pq.value(), exec);
      ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
      auto all = cursor.value()->FetchAll();
      ASSERT_TRUE(all.ok()) << q.id << ": " << all.status().ToString();
      total_spill_events += cursor.value()->stats().engine.spill_events;
    }
  }
  EXPECT_GT(total_spill_events, 0)
      << "no paper-query execution spilled at a " << kTinyBudget
      << "-byte budget — the governor is not engaging";
}

// ---------------------------------------------------------------------------
// Acceptance: a join-graph plan whose hash build AND tail sort both
// exceed the budget completes via Grace + external sort, bit-identical
// to the unlimited serial run.
//
// The plan is hand-built (columnar_exec_test precedent): front-end
// extraction never emits HSJOIN for value-join FLWORs here — they take
// the isolated-DAG fallback — and the cost-based planner prefers index
// nested loops once indexes exist. A self-join of the document relation
// on its unique `pre` column puts every doc row through the hash build
// and every match through the ORDER BY tail, both far past 16 KiB.

class GraceJoinSpill : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    doc_ = new xml::DocTable();
    data::XmarkOptions xmark;
    xmark.scale = 0.1;  // 2168 doc-relation rows, > kMinSpillRows
    ASSERT_TRUE(xml::LoadDocument(doc_, "auction.xml",
                                  data::GenerateXmark(xmark))
                    .ok());
    db_ = engine::Database::Build(*doc_).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    delete doc_;
  }

  static xml::DocTable* doc_;
  static engine::Database* db_;
};

xml::DocTable* GraceJoinSpill::doc_ = nullptr;
engine::Database* GraceJoinSpill::db_ = nullptr;

TEST_F(GraceJoinSpill, HashBuildAndTailSortSpillBitIdentically) {
  // The floor: below kMinSpillRows the governor refuses to spill (by
  // design), so this corpus must be big enough to be above it.
  ASSERT_GE(db_->row_count(), engine::kMinSpillRows);

  opt::JoinGraph graph;
  graph.num_aliases = 2;
  auto col_term = [](int alias, const char* col) {
    opt::QualTerm t;
    t.alias = alias;
    t.col = col;
    return t;
  };
  graph.predicates.push_back(
      {col_term(0, "pre"), algebra::CmpOp::kEq, col_term(1, "pre")});
  graph.item = col_term(0, "pre");
  graph.select_list = {graph.item};

  engine::PhysicalPlan plan;
  plan.graph = &graph;
  auto scan0 = std::make_unique<engine::PhysNode>();
  scan0->kind = engine::PhysKind::kTbScan;
  scan0->alias = 0;
  auto scan1 = std::make_unique<engine::PhysNode>();
  scan1->kind = engine::PhysKind::kTbScan;
  scan1->alias = 1;
  auto join = std::make_unique<engine::PhysNode>();
  join->kind = engine::PhysKind::kHsJoin;
  join->preds = graph.predicates;
  join->left = std::move(scan0);
  join->right = std::move(scan1);
  plan.root = std::move(join);

  // `pre` is unique, so every row pairs with exactly itself and the
  // ordered result is simply 0..N-1 — an oracle independent of any
  // executor. The serial unlimited row run must reproduce it…
  std::vector<int64_t> expected(static_cast<size_t>(db_->row_count()));
  std::iota(expected.begin(), expected.end(), 0);
  engine::PlannerOptions serial;
  auto oracle = engine::ExecutePlan(plan, *db_, serial);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(oracle.value(), expected);

  // …and so must the columnar executor at a spill-forcing budget, at
  // every worker count, while actually going external twice.
  for (int threads : kThreadCounts) {
    engine::PlannerOptions spilled;
    spilled.use_columnar = true;
    spilled.threads = threads;
    spilled.limits.max_memory_bytes = kTinyBudget;
    engine::ExecStats stats;
    auto result = engine::ExecutePlan(plan, *db_, spilled, &stats);
    ASSERT_TRUE(result.ok())
        << "threads=" << threads << ": " << result.status().ToString();
    EXPECT_EQ(result.value(), expected)
        << "spilled execution diverges at threads=" << threads;
    // Grace build + external tail sort: at least two distinct spills.
    EXPECT_GE(stats.spill_events, 2)
        << "threads=" << threads
        << ": expected both the hash build and the tail sort to spill";
    EXPECT_GT(stats.spill_bytes, 0);
  }
}

}  // namespace
}  // namespace xqjg
