// Randomized differential suite pinning the columnar storage layer: for
// seeded random documents AND seeded random query shapes, every
// execution lane must agree item-for-item — native reference, stacked
// row/columnar (late-materialized σ/π chains), and join-graph
// row/columnar physical plans over both the indexed (B-tree probes over
// typed/dictionary columns) and bare (table-scan) databases.
//
// Scale knob: XQJG_FUZZ_ITERS raises the randomized iteration count (CI
// runs a larger sweep); the fixed-seed suites below are the floor that
// always runs.
#include <gtest/gtest.h>

#include <string>

#include "tests/testutil/differential.h"
#include "tests/testutil/fixtures.h"

namespace xqjg {
namespace {

// Eight fixed document seeds × eight query seeds each: the deterministic
// floor behind the acceptance bar (row ≡ columnar ≡ native on ≥ 8 seeds).
class StorageFuzzSeed : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StorageFuzzSeed, AllLanesAgreeOnRandomDocAndQueries) {
  const uint64_t doc_seed = GetParam();
  const std::string xml =
      testutil::RandomXml(doc_seed, 80 + static_cast<int>(doc_seed % 4) * 40);
  testutil::DifferentialHarness harness("fuzz.xml", xml);
  for (uint64_t q = 0; q < 8; ++q) {
    const uint64_t query_seed = doc_seed * 1000 + q;
    EXPECT_TRUE(
        harness.Check(testutil::RandomQuery(query_seed, "fuzz.xml")))
        << "doc seed " << doc_seed << ", query seed " << query_seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzzSeed,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u,
                                           17u, 18u));

// Open-ended randomized sweep: document shape and query mix vary per
// iteration; XQJG_FUZZ_ITERS widens it in CI.
TEST(StorageFuzz, RandomizedSweepAcrossDocsAndQueries) {
  const int iters = testutil::FuzzIterations(12);
  for (int i = 0; i < iters; ++i) {
    const uint64_t doc_seed = 500 + static_cast<uint64_t>(i);
    const std::string xml =
        testutil::RandomXml(doc_seed, 60 + (i % 5) * 45);
    testutil::DifferentialHarness harness("fuzz.xml", xml);
    for (uint64_t q = 0; q < 5; ++q) {
      const uint64_t query_seed = doc_seed * 977 + q;
      ASSERT_TRUE(
          harness.Check(testutil::RandomQuery(query_seed, "fuzz.xml")))
          << "iteration " << i << ", doc seed " << doc_seed
          << ", query seed " << query_seed;
    }
  }
}

// Degenerate document shapes the random generator rarely hits: a single
// element, deep single-path nesting, and all-identical siblings (heavy
// dictionary-code duplication).
TEST(StorageFuzz, DegenerateDocumentShapes) {
  const char* docs[] = {
      "<r><a/></r>",
      "<r><a><b><c><d><a><b><c><d>7</d></c></b></a></d></c></b></a></r>",
      "<r><a>1</a><a>1</a><a>1</a><a>1</a><a>1</a><a>1</a></r>",
      "<r><a id=\"n0\"/><b ref=\"n0\"/><a id=\"n1\"/><b ref=\"n1\"/></r>",
  };
  for (const char* xml : docs) {
    testutil::DifferentialHarness harness("fuzz.xml", xml);
    for (uint64_t q = 0; q < 6; ++q) {
      EXPECT_TRUE(harness.Check(testutil::RandomQuery(3000 + q, "fuzz.xml")))
          << "doc " << xml << ", query seed " << (3000 + q);
    }
  }
}

// Mutation-interleaved sweep: catalog churn (loads of new documents,
// in-place reloads, index drop/create) interleaved with differential
// checks. Every step drains a cursor pinned BEFORE the mutation
// (bit-identical to the pre-mutation native reference — snapshot
// isolation over the shared block) and re-checks a fresh query across
// all lanes afterwards (the delta-reloaded / appended block serves the
// same bytes as a from-scratch build). Alternating morsel worker counts
// cover the serial and parallel columnar paths; XQJG_FUZZ_ITERS widens
// the sweep in CI (the ASan and TSan jobs both run it).
TEST(MutationInterleavedFuzz, ChurnKeepsLanesBitIdentical) {
  const int iters = testutil::FuzzIterations(6);
  for (int i = 0; i < iters; ++i) {
    const uint64_t seed = 9000 + static_cast<uint64_t>(i);
    const int threads = (i % 2) ? 8 : 1;
    ASSERT_TRUE(testutil::MutationInterleavedEpisode(seed, 5, threads))
        << "episode seed " << seed << ", threads " << threads;
  }
}

}  // namespace
}  // namespace xqjg
