SELECT DISTINCT d1.pre, d1.pre
FROM doc AS d0, doc AS d1, doc AS d2
WHERE d0.kind = 1
  AND d0.name = 'bidder'
  AND d1.kind = 1
  AND d1.name = 'open_auction'
  AND d2.kind = 0
  AND d2.name = 'auction.xml'
  AND d2.pre < d1.pre
  AND d1.pre <= d2.pre + d2.size
  AND d1.pre < d0.pre
  AND d0.pre <= d1.pre + d1.size
  AND d1.level + 1 = d0.level
ORDER BY d1.pre