SELECT DISTINCT d0.pre
FROM doc AS d0, doc AS d1, doc AS d2, doc AS d3, doc AS d4, doc AS d5, doc AS d6, doc AS d7, doc AS d8, doc AS d9
WHERE d0.kind = 3
  AND d0.name = ''
  AND d1.kind = 1
  AND d1.name = 'name'
  AND d3.kind = 1
  AND d3.name = 'person'
  AND d4.kind = 1
  AND d4.name = 'people'
  AND d5.kind = 1
  AND d5.name = 'site'
  AND d6.kind = 0
  AND d6.name = 'auction.xml'
  AND d6.pre < d5.pre
  AND d5.pre <= d6.pre + d6.size
  AND d6.level + 1 = d5.level
  AND d5.pre < d4.pre
  AND d4.pre <= d5.pre + d5.size
  AND d5.level + 1 = d4.level
  AND d4.pre < d3.pre
  AND d3.pre <= d4.pre + d4.size
  AND d4.level + 1 = d3.level
  AND d7.kind = 1
  AND d7.name = 'people'
  AND d8.kind = 1
  AND d8.name = 'site'
  AND d9.kind = 0
  AND d9.name = 'auction.xml'
  AND d9.pre < d8.pre
  AND d8.pre <= d9.pre + d9.size
  AND d9.level + 1 = d8.level
  AND d8.pre < d7.pre
  AND d7.pre <= d8.pre + d8.size
  AND d8.level + 1 = d7.level
  AND d7.pre < d3.pre
  AND d3.pre <= d7.pre + d7.size
  AND d7.level + 1 = d3.level
  AND d2.parent = d3.pre
  AND d2.kind = 2
  AND d2.name = 'id'
  AND d2.value = 'person0'
  AND d3.pre < d1.pre
  AND d1.pre <= d3.pre + d3.size
  AND d3.level + 1 = d1.level
  AND d1.pre < d0.pre
  AND d0.pre <= d1.pre + d1.size
  AND d1.level + 1 = d0.level
ORDER BY d0.pre