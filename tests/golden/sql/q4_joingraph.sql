SELECT DISTINCT d0.pre
FROM doc AS d0, doc AS d1, doc AS d2, doc AS d3
WHERE d0.kind = 3
  AND d0.name = ''
  AND d1.kind = 1
  AND d1.name = 'price'
  AND d2.kind = 1
  AND d2.name = 'closed_auction'
  AND d3.kind = 0
  AND d3.name = 'auction.xml'
  AND d3.pre < d2.pre
  AND d2.pre <= d3.pre + d3.size
  AND d2.pre < d1.pre
  AND d1.pre <= d2.pre + d2.size
  AND d2.level + 1 = d1.level
  AND d1.pre < d0.pre
  AND d0.pre <= d1.pre + d1.size
  AND d1.level + 1 = d0.level
ORDER BY d0.pre