SELECT DISTINCT d0.pre, d4.pre
FROM doc AS d0, doc AS d1, doc AS d2, doc AS d3, doc AS d4, doc AS d5, doc AS d6, doc AS d7, doc AS d8, doc AS d9, doc AS d10, doc AS d11, doc AS d12, doc AS d13, doc AS d14, doc AS d15, doc AS d16
WHERE d0.kind = 1
  AND d0.name = 'title'
  AND d1.kind = 1
  AND d1.name = 'title'
  AND d2.kind = 1
  AND d2.name = 'author'
  AND d3.kind = 1
  AND d3.name = 'year'
  AND d4.kind = 1
  AND d4.name = 'phdthesis'
  AND d5.kind = 1
  AND d5.name = 'dblp'
  AND d6.kind = 0
  AND d6.name = 'dblp.xml'
  AND d6.pre < d5.pre
  AND d5.pre <= d6.pre + d6.size
  AND d6.level + 1 = d5.level
  AND d5.pre < d4.pre
  AND d4.pre <= d5.pre + d5.size
  AND d5.level + 1 = d4.level
  AND d4.pre < d3.pre
  AND d3.pre <= d4.pre + d4.size
  AND d4.level + 1 = d3.level
  AND d3.value < '1994'
  AND d4.pre < d2.pre
  AND d2.pre <= d4.pre + d4.size
  AND d4.level + 1 = d2.level
  AND d7.kind = 1
  AND d7.name = 'dblp'
  AND d8.kind = 0
  AND d8.name = 'dblp.xml'
  AND d8.pre < d7.pre
  AND d7.pre <= d8.pre + d8.size
  AND d8.level + 1 = d7.level
  AND d7.pre < d4.pre
  AND d4.pre <= d7.pre + d7.size
  AND d7.level + 1 = d4.level
  AND d9.kind = 1
  AND d9.name = 'dblp'
  AND d10.kind = 0
  AND d10.name = 'dblp.xml'
  AND d10.pre < d9.pre
  AND d9.pre <= d10.pre + d10.size
  AND d10.level + 1 = d9.level
  AND d9.pre < d4.pre
  AND d4.pre <= d9.pre + d9.size
  AND d9.level + 1 = d4.level
  AND d4.pre < d1.pre
  AND d1.pre <= d4.pre + d4.size
  AND d4.level + 1 = d1.level
  AND d11.kind = 1
  AND d11.name = 'dblp'
  AND d12.kind = 0
  AND d12.name = 'dblp.xml'
  AND d12.pre < d11.pre
  AND d11.pre <= d12.pre + d12.size
  AND d12.level + 1 = d11.level
  AND d11.pre < d4.pre
  AND d4.pre <= d11.pre + d11.size
  AND d11.level + 1 = d4.level
  AND d13.kind = 1
  AND d13.name = 'dblp'
  AND d14.kind = 0
  AND d14.name = 'dblp.xml'
  AND d14.pre < d13.pre
  AND d13.pre <= d14.pre + d14.size
  AND d14.level + 1 = d13.level
  AND d13.pre < d4.pre
  AND d4.pre <= d13.pre + d13.size
  AND d13.level + 1 = d4.level
  AND d15.kind = 1
  AND d15.name = 'dblp'
  AND d16.kind = 0
  AND d16.name = 'dblp.xml'
  AND d16.pre < d15.pre
  AND d15.pre <= d16.pre + d16.size
  AND d16.level + 1 = d15.level
  AND d15.pre < d4.pre
  AND d4.pre <= d15.pre + d15.size
  AND d15.level + 1 = d4.level
  AND d4.pre < d0.pre
  AND d0.pre <= d4.pre + d4.size
  AND d4.level + 1 = d0.level
ORDER BY d4.pre, d0.pre