// Cross-mode differential tests: for every paper query, the stacked plan,
// the isolated join graph (cost-based engine), and the native engine
// (whole and segmented) must produce the same serialized result.
#include <gtest/gtest.h>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"

namespace xqjg::api {
namespace {

class ModesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    processor_ = new XQueryProcessor();
    data::XmarkOptions xmark;
    xmark.scale = 0.1;
    ASSERT_TRUE(processor_
                    ->LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                   XmarkSegmentTags())
                    .ok());
    data::DblpOptions dblp;
    dblp.publications = 400;
    ASSERT_TRUE(processor_
                    ->LoadDocument("dblp.xml", data::GenerateDblp(dblp),
                                   DblpSegmentTags())
                    .ok());
    ASSERT_TRUE(processor_->CreateRelationalIndexes().ok());
    for (auto& pattern : PaperPatternIndexes()) {
      processor_->CreatePatternIndex(pattern);
    }
  }
  static void TearDownTestSuite() {
    delete processor_;
    processor_ = nullptr;
  }

  static XQueryProcessor* processor_;
};

XQueryProcessor* ModesTest::processor_ = nullptr;

struct ModeCase {
  const char* query_id;
  bool run_segmented;  // Q2 joins across segments: skipped (paper: DNF)
};

class PaperQueryModes : public ModesTest,
                        public ::testing::WithParamInterface<ModeCase> {};

TEST_P(PaperQueryModes, AllModesAgree) {
  const ModeCase& c = GetParam();
  const PaperQuery* query = nullptr;
  for (const auto& q : PaperQueries()) {
    if (q.id == c.query_id) query = &q;
  }
  ASSERT_NE(query, nullptr);
  RunOptions options;
  options.context_document = query->document;
  options.timeout_seconds = 120;

  options.mode = Mode::kJoinGraph;
  auto joingraph = processor_->Run(query->text, options);
  ASSERT_TRUE(joingraph.ok()) << joingraph.status().ToString();

  options.mode = Mode::kStacked;
  auto stacked = processor_->Run(query->text, options);
  ASSERT_TRUE(stacked.ok()) << stacked.status().ToString();
  EXPECT_EQ(stacked.value().items, joingraph.value().items)
      << "stacked vs joingraph disagree for " << query->id;

  options.mode = Mode::kNativeWhole;
  auto native = processor_->Run(query->text, options);
  ASSERT_TRUE(native.ok()) << native.status().ToString();
  EXPECT_EQ(native.value().items, joingraph.value().items)
      << "native-whole vs joingraph disagree for " << query->id;

  if (c.run_segmented) {
    options.mode = Mode::kNativeSegmented;
    auto segmented = processor_->Run(query->text, options);
    ASSERT_TRUE(segmented.ok()) << segmented.status().ToString();
    EXPECT_EQ(segmented.value().items, joingraph.value().items)
        << "native-segmented vs joingraph disagree for " << query->id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperQueries, PaperQueryModes,
    ::testing::Values(ModeCase{"Q1", true}, ModeCase{"Q2", false},
                      ModeCase{"Q3", true}, ModeCase{"Q4", true},
                      ModeCase{"Q5", true}, ModeCase{"Q6", true}),
    [](const ::testing::TestParamInfo<ModeCase>& pi) {
      return pi.param.query_id;
    });

TEST_F(ModesTest, Q1HasExpectedShape) {
  RunOptions options;
  options.mode = Mode::kJoinGraph;
  options.context_document = "auction.xml";
  auto r = processor_->Run(PaperQueries()[0].text, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r.value().used_fallback);
  EXPECT_NE(r.value().sql.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(r.value().sql.find("ORDER BY"), std::string::npos);
  EXPECT_NE(r.value().explain.find("IXSCAN"), std::string::npos);
  EXPECT_GT(r.value().result_count(), 0u);
}

TEST_F(ModesTest, Q2ResultIsNonEmptyAndOrdered) {
  RunOptions options;
  options.mode = Mode::kJoinGraph;
  options.context_document = "auction.xml";
  options.timeout_seconds = 120;
  auto r = processor_->Run(PaperQueries()[1].text, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r.value().result_count(), 0u);
}

TEST_F(ModesTest, SyntacticJoinOrderStillCorrect) {
  RunOptions options;
  options.context_document = "auction.xml";
  options.mode = Mode::kJoinGraph;
  auto smart = processor_->Run(PaperQueries()[0].text, options);
  options.syntactic_join_order = true;
  auto naive = processor_->Run(PaperQueries()[0].text, options);
  ASSERT_TRUE(smart.ok());
  ASSERT_TRUE(naive.ok());
  EXPECT_EQ(smart.value().items, naive.value().items);
}

}  // namespace
}  // namespace xqjg::api
