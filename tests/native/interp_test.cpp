// Native interpreter: axis semantics for all 12 axes, comparisons,
// pattern indexes, and segmentation.
#include <gtest/gtest.h>

#include "src/native/interp.h"
#include "src/native/pattern_index.h"
#include "src/native/store.h"
#include "src/native/xscan.h"
#include "src/xml/serializer.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::native {
namespace {

constexpr const char* kDoc = R"(
<r>
  <a id="1"><b>x</b><c><b>y</b></c></a>
  <a id="2"><b>z</b></a>
  <d>tail</d>
</r>)";

class InterpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto parsed = xml::ParseDom("t.xml", kDoc);
    ASSERT_TRUE(parsed.ok());
    doc_ = std::move(parsed).value();
    resolver_.Add(doc_.get());
  }

  std::string Run(const std::string& query) {
    auto ast = xquery::Parse(query);
    if (!ast.ok()) return "parse error: " + ast.status().ToString();
    auto core = xquery::Normalize(ast.value());
    if (!core.ok()) return "norm error: " + core.status().ToString();
    auto result = EvaluateQuery(core.value(), &resolver_);
    if (!result.ok()) return "eval error: " + result.status().ToString();
    return xml::SerializeSequence(result.value());
  }

  std::unique_ptr<xml::XmlDocument> doc_;
  MapResolver resolver_;
};

TEST_F(InterpTest, ChildAndDescendant) {
  EXPECT_EQ(Run("doc(\"t.xml\")/child::r/child::a/child::b"),
            "<b>x</b>\n<b>z</b>");
  EXPECT_EQ(Run("doc(\"t.xml\")/descendant::b"),
            "<b>x</b>\n<b>y</b>\n<b>z</b>");
}

TEST_F(InterpTest, AttributesAndWildcards) {
  EXPECT_EQ(Run("doc(\"t.xml\")//a/@id"), "id=\"1\"\nid=\"2\"");
  EXPECT_EQ(Run("doc(\"t.xml\")/r/child::*[@id = \"2\"]"),
            "<a id=\"2\"><b>z</b></a>");
}

TEST_F(InterpTest, ReverseAxes) {
  EXPECT_EQ(Run("doc(\"t.xml\")//b[. = \"y\"]/parent::*"),
            "<c><b>y</b></c>");
  EXPECT_EQ(Run("doc(\"t.xml\")//b[. = \"y\"]/ancestor::a/@id"),
            "id=\"1\"");
  EXPECT_EQ(Run("doc(\"t.xml\")//c/ancestor-or-self::*"),
            Run("doc(\"t.xml\")/r") + "\n" +
                Run("doc(\"t.xml\")//a[@id = \"1\"]") + "\n" +
                Run("doc(\"t.xml\")//c"));
}

TEST_F(InterpTest, HorizontalAxes) {
  EXPECT_EQ(Run("doc(\"t.xml\")//a[@id = \"1\"]/following-sibling::*"),
            "<a id=\"2\"><b>z</b></a>\n<d>tail</d>");
  EXPECT_EQ(Run("doc(\"t.xml\")//d/preceding-sibling::a/@id"),
            "id=\"1\"\nid=\"2\"");
  EXPECT_EQ(Run("doc(\"t.xml\")//c/following::*"),
            "<a id=\"2\"><b>z</b></a>\n<b>z</b>\n<d>tail</d>");
  EXPECT_EQ(Run("doc(\"t.xml\")//a[@id = \"2\"]/preceding::b"),
            "<b>x</b>\n<b>y</b>");
}

TEST_F(InterpTest, SelfAndDos) {
  EXPECT_EQ(Run("doc(\"t.xml\")//c/self::c"), "<c><b>y</b></c>");
  EXPECT_EQ(Run("doc(\"t.xml\")//c/self::b"), "");
  EXPECT_EQ(Run("doc(\"t.xml\")//c/descendant-or-self::node()"),
            "<c><b>y</b></c>\n<b>y</b>\ny");
}

TEST_F(InterpTest, ComparisonsAtomizeSmallNodesOnly) {
  // <a id="1"> has subtree size > 1: no typed value, comparison false.
  EXPECT_EQ(Run("doc(\"t.xml\")/r/a[. = \"x\"]"), "");
  // <b>x</b> has size 1: value available.
  EXPECT_EQ(Run("doc(\"t.xml\")//b[. = \"x\"]"), "<b>x</b>");
}

TEST_F(InterpTest, NumericComparisonNeedsDecimal) {
  EXPECT_EQ(Run("doc(\"t.xml\")//a[@id > 1]/@id"), "id=\"2\"");
  EXPECT_EQ(Run("doc(\"t.xml\")//b[. > 0]"), "");  // x/y/z not numeric
}

TEST_F(InterpTest, DuplicateRemovalAndOrder) {
  // ancestor paths from both b's reach <r> once, in document order.
  EXPECT_EQ(Run("for $b in doc(\"t.xml\")//b return $b/ancestor::r"),
            Run("doc(\"t.xml\")/r") + "\n" + Run("doc(\"t.xml\")/r") + "\n" +
                Run("doc(\"t.xml\")/r"))
      << "duplicates across for iterations are retained";
  EXPECT_EQ(Run("doc(\"t.xml\")//b/ancestor::r"), Run("doc(\"t.xml\")/r"))
      << "fs:ddo after the step removes duplicates";
}

TEST(Store, SegmentationPreservesSpine) {
  auto dom = xml::ParseDom("t.xml", kDoc);
  ASSERT_TRUE(dom.ok());
  DocumentStore store;
  ASSERT_TRUE(store.AddSegmented(*dom.value(), {"a", "d"}).ok());
  EXPECT_EQ(store.SegmentCount("t.xml"), 3u);
  // Each fragment keeps the <r> spine, so absolute paths still work.
  NativeEngine engine(&store);
  auto ast = xquery::Parse("doc(\"t.xml\")/r/a/@id");
  auto core = xquery::Normalize(ast.value());
  auto result = engine.Run(core.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().size(), 2u);
}

TEST(PatternIndex, ScanAndEligibility) {
  auto dom = xml::ParseDom("t.xml", kDoc);
  DocumentStore store;
  ASSERT_TRUE(store.AddSegmented(*dom.value(), {"a", "d"}).ok());
  XmlPattern pattern;
  pattern.uri = "t.xml";
  pattern.steps = {{xquery::Axis::kDescendant, "a"},
                   {xquery::Axis::kAttribute, "id"}};
  pattern.type = PatternType::kVarchar;
  PatternIndex index(pattern, store);
  EXPECT_EQ(index.entry_count(), 2u);
  auto rids = index.Scan(xquery::CompOp::kEq, Value::String("2"));
  EXPECT_EQ(rids.size(), 1u);
  rids = index.Scan(xquery::CompOp::kGe, Value::String("1"));
  EXPECT_EQ(rids.size(), 2u);

  // Eligibility analysis.
  auto ast = xquery::Parse("doc(\"t.xml\")//a/@id");
  auto core = xquery::Normalize(ast.value());
  auto extracted = PatternOfExpr(core.value(), PatternType::kVarchar);
  ASSERT_TRUE(extracted.has_value());
  EXPECT_EQ(extracted->ToString(), "doc(\"t.xml\")//a/@id AS VARCHAR");
  // Reverse axes are ineligible.
  auto rev = xquery::Parse("doc(\"t.xml\")//b/parent::c");
  auto rev_core = xquery::Normalize(rev.value());
  EXPECT_FALSE(PatternOfExpr(rev_core.value(), PatternType::kVarchar)
                   .has_value());
}

TEST(NativeEngine, IndexPrunesFragments) {
  auto dom = xml::ParseDom("t.xml", kDoc);
  DocumentStore store;
  ASSERT_TRUE(store.AddSegmented(*dom.value(), {"a", "d"}).ok());
  NativeEngine engine(&store);
  XmlPattern pattern;
  pattern.uri = "t.xml";
  pattern.steps = {{xquery::Axis::kDescendant, "a"},
                   {xquery::Axis::kAttribute, "id"}};
  engine.CreateIndex(pattern);
  auto ast = xquery::Parse("doc(\"t.xml\")//a[@id = \"2\"]/b");
  auto core = xquery::Normalize(ast.value());
  NativeRunStats stats;
  auto result = engine.Run(core.value(), -1, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(stats.used_index);
  EXPECT_EQ(stats.fragments_scanned, 1u);
  EXPECT_LT(stats.fragments_scanned, stats.fragments_considered);
  ASSERT_EQ(result.value().size(), 1u);
  EXPECT_EQ(result.value()[0], "<b>z</b>");
}

}  // namespace
}  // namespace xqjg::native
