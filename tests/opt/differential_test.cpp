// Differential property tests: for a family of generated queries over a
// generated document, the stacked plan, the isolated plan (both under the
// materializing evaluator), the cost-based engine (where extractable),
// and the native reference interpreter must all return the same node
// sequence.
#include <gtest/gtest.h>

#include "src/common/str.h"
#include "src/compiler/compile.h"
#include "src/data/xmark.h"
#include "src/engine/algebra_exec.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/native/interp.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg {
namespace {

class DifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::XmarkOptions options;
    options.scale = 0.05;
    xml_text_ = new std::string(data::GenerateXmark(options));
    doc_ = new xml::DocTable();
    ASSERT_TRUE(xml::LoadDocument(doc_, "auction.xml", *xml_text_).ok());
    auto dom = xml::ParseDom("auction.xml", *xml_text_);
    ASSERT_TRUE(dom.ok());
    dom_ = dom.value().release();
    db_ = engine::Database::Build(*doc_).release();
    for (const auto& def : engine::TableVIIndexes()) {
      ASSERT_TRUE(db_->CreateIndex(def).ok());
    }
  }
  static void TearDownTestSuite() {
    delete db_;
    delete dom_;
    delete doc_;
    delete xml_text_;
  }

  static std::string* xml_text_;
  static xml::DocTable* doc_;
  static xml::XmlDocument* dom_;
  static engine::Database* db_;
};

std::string* DifferentialTest::xml_text_ = nullptr;
xml::DocTable* DifferentialTest::doc_ = nullptr;
xml::XmlDocument* DifferentialTest::dom_ = nullptr;
engine::Database* DifferentialTest::db_ = nullptr;

class QueryFamily : public DifferentialTest,
                    public ::testing::WithParamInterface<const char*> {};

TEST_P(QueryFamily, AllExecutorsAgree) {
  const std::string query = GetParam();
  auto ast = xquery::Parse(query);
  ASSERT_TRUE(ast.ok()) << ast.status().ToString();
  xquery::NormalizeOptions nopts;
  nopts.context_document = "auction.xml";
  auto core = xquery::Normalize(ast.value(), nopts);
  ASSERT_TRUE(core.ok()) << core.status().ToString();

  // Reference: the native interpreter.
  native::MapResolver resolver;
  resolver.Add(dom_);
  auto reference = native::EvaluateQuery(core.value(), &resolver);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  std::vector<int64_t> expected;
  for (const xml::XmlNode* node : reference.value()) {
    expected.push_back(node->pre);  // same pre numbering as the table
  }

  auto stacked = compiler::CompileQuery(core.value());
  ASSERT_TRUE(stacked.ok()) << stacked.status().ToString();
  auto stacked_seq = engine::EvaluateToSequence(stacked.value(), *doc_);
  ASSERT_TRUE(stacked_seq.ok()) << stacked_seq.status().ToString();
  EXPECT_EQ(stacked_seq.value(), expected) << "stacked vs interpreter";

  auto iso = opt::Isolate(stacked.value());
  ASSERT_TRUE(iso.ok()) << iso.status().ToString();
  auto iso_seq = engine::EvaluateToSequence(iso.value().isolated, *doc_);
  ASSERT_TRUE(iso_seq.ok()) << iso_seq.status().ToString();
  EXPECT_EQ(iso_seq.value(), expected) << "isolated vs interpreter";

  auto graph = opt::ExtractJoinGraph(iso.value().isolated);
  if (graph.ok()) {
    auto plan = engine::PlanJoinGraph(graph.value(), *db_);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto engine_seq = engine::ExecutePlan(plan.value(), *db_);
    ASSERT_TRUE(engine_seq.ok()) << engine_seq.status().ToString();
    EXPECT_EQ(engine_seq.value(), expected)
        << "engine vs interpreter\n" << graph.value().ToString();
    // Ablation executor must agree too.
    engine::PlannerOptions popts;
    popts.syntactic_order = true;
    auto naive_plan = engine::PlanJoinGraph(graph.value(), *db_, popts);
    ASSERT_TRUE(naive_plan.ok());
    auto naive_seq = engine::ExecutePlan(naive_plan.value(), *db_, popts);
    ASSERT_TRUE(naive_seq.ok());
    EXPECT_EQ(naive_seq.value(), expected) << "syntactic order executor";
  }
}

INSTANTIATE_TEST_SUITE_P(
    GeneratedQueries, QueryFamily,
    ::testing::Values(
        // single steps, each axis family
        "doc(\"auction.xml\")/child::site",
        "doc(\"auction.xml\")//open_auction",
        "doc(\"auction.xml\")//bidder/child::increase",
        "doc(\"auction.xml\")//increase/parent::bidder",
        "doc(\"auction.xml\")//bidder/ancestor::open_auction",
        "doc(\"auction.xml\")//category/ancestor-or-self::*",
        "doc(\"auction.xml\")//person/@id",
        "doc(\"auction.xml\")//people/child::node()",
        "doc(\"auction.xml\")//categories/preceding-sibling::regions",
        "doc(\"auction.xml\")//regions/following-sibling::*",
        "doc(\"auction.xml\")//name/text()",
        "doc(\"auction.xml\")//category/self::category/name",
        // predicates: existence, value, attribute, conjunction
        "doc(\"auction.xml\")//open_auction[bidder]",
        "doc(\"auction.xml\")//closed_auction[price > 100]/price",
        "doc(\"auction.xml\")//person[@id = \"person3\"]/name",
        "doc(\"auction.xml\")//item[incategory and quantity]/name",
        "doc(\"auction.xml\")//open_auction[bidder/increase > 30]",
        // nested FLWOR / let / where
        "for $a in doc(\"auction.xml\")//open_auction "
        "return $a/bidder/time",
        "let $d := doc(\"auction.xml\") for $p in $d//person "
        "return if ($p/phone) then $p/name else ()",
        "for $a in doc(\"auction.xml\")//open_auction "
        "where $a/initial > 100 return $a/itemref",
        "for $c in doc(\"auction.xml\")//category "
        "for $i in doc(\"auction.xml\")//item "
        "where $i/incategory/@category = $c/@id return $c/name",
        // reverse-axis heavy
        "doc(\"auction.xml\")//increase/ancestor::site",
        "doc(\"auction.xml\")//time/preceding::initial",
        // empty results
        "doc(\"auction.xml\")//nosuchtag",
        "doc(\"auction.xml\")//person[@id = \"nobody\"]"));

}  // namespace
}  // namespace xqjg
