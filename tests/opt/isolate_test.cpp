// End-to-end tests of the compile -> isolate pipeline on the paper's Q1
// (Fig. 4 -> Fig. 7) against the Fig. 2 document snippet.
#include <gtest/gtest.h>

#include "src/algebra/dag.h"
#include "src/algebra/printer.h"
#include "src/compiler/compile.h"
#include "src/engine/algebra_exec.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg {
namespace {

using algebra::OpPtr;

xml::DocTable AuctionSnippet() {
  xml::DocTable table;
  Status st = xml::LoadDocument(&table, "auction.xml", R"(
    <site>
      <open_auction id="1">
        <initial>15</initial>
        <bidder><time>18:43</time><increase>4.20</increase></bidder>
      </open_auction>
      <open_auction id="2">
        <initial>20</initial>
      </open_auction>
      <open_auction id="3">
        <bidder><increase>7.50</increase></bidder>
        <bidder><increase>1.00</increase></bidder>
      </open_auction>
    </site>)");
  EXPECT_TRUE(st.ok()) << st.ToString();
  return table;
}

Result<OpPtr> CompileText(const std::string& query) {
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr core, xquery::Normalize(ast));
  return compiler::CompileQuery(core);
}

constexpr const char* kQ1 =
    "for $x in doc(\"auction.xml\")/descendant::open_auction "
    "return if ($x/child::bidder) then $x else ()";

TEST(Pipeline, Q1StackedEvaluates) {
  xml::DocTable doc = AuctionSnippet();
  auto plan = CompileText(kQ1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto seq = engine::EvaluateToSequence(plan.value(), doc);
  ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  // open_auction id=1 (pre 2) and id=3 have bidders; id=2 does not.
  std::vector<std::string> names;
  for (int64_t pre : seq.value()) names.push_back(doc.name(pre));
  ASSERT_EQ(seq.value().size(), 2u);
  EXPECT_EQ(names[0], "open_auction");
  EXPECT_EQ(names[1], "open_auction");
  // Verify ids via the attribute child (first child row after element).
  EXPECT_EQ(doc.value(seq.value()[0] + 1), "1");
  EXPECT_EQ(doc.value(seq.value()[1] + 1), "3");
}

TEST(Pipeline, Q1IsolationPreservesResult) {
  xml::DocTable doc = AuctionSnippet();
  auto plan = CompileText(kQ1);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  auto stacked_seq = engine::EvaluateToSequence(plan.value(), doc);
  ASSERT_TRUE(stacked_seq.ok());

  auto iso = opt::Isolate(plan.value());
  ASSERT_TRUE(iso.ok()) << iso.status().ToString();
  auto iso_seq = engine::EvaluateToSequence(iso.value().isolated, doc);
  ASSERT_TRUE(iso_seq.ok()) << iso_seq.status().ToString()
                            << "\n" << algebra::PrintPlan(iso.value().isolated);
  EXPECT_EQ(stacked_seq.value(), iso_seq.value());
}

TEST(Pipeline, Q1IsolatedPlanShape) {
  auto plan = CompileText(kQ1);
  ASSERT_TRUE(plan.ok());
  auto iso = opt::Isolate(plan.value());
  ASSERT_TRUE(iso.ok()) << iso.status().ToString();
  const OpPtr& p = iso.value().isolated;
  SCOPED_TRACE(algebra::PrintPlan(p));
  // Fig. 7: at most one rank and one distinct remain, and the plan shrinks
  // substantially relative to the stacked original (Fig. 4).
  EXPECT_LE(iso.value().ranks_after, 1u);
  EXPECT_LE(iso.value().distincts_after, 1u);
  EXPECT_LT(iso.value().ops_after, iso.value().ops_before);
  // No rowid operators survive (rule 1 target).
  EXPECT_EQ(algebra::CountOps(p, algebra::OpKind::kRowId), 0u);
}

TEST(Pipeline, Q1ExtractsJoinGraph) {
  auto plan = CompileText(kQ1);
  ASSERT_TRUE(plan.ok());
  auto iso = opt::Isolate(plan.value());
  ASSERT_TRUE(iso.ok());
  auto jg = opt::ExtractJoinGraph(iso.value().isolated);
  ASSERT_TRUE(jg.ok()) << jg.status().ToString() << "\n"
                       << algebra::PrintPlan(iso.value().isolated);
  // Fig. 8: a three-fold self-join of doc (document node, open_auction,
  // bidder).
  EXPECT_EQ(jg.value().num_aliases, 3);
  EXPECT_TRUE(jg.value().distinct);
  EXPECT_FALSE(jg.value().order_by.empty());
}

}  // namespace
}  // namespace xqjg
