// Negative tests for the join-graph / physical-plan half of the static
// plan verifier (src/opt/plan_check.h).
//
// The planner never emits the broken shapes below, so each test
// hand-builds a JoinGraph or PhysNode tree with one deliberate defect
// and asserts the checker reports the specific invariant class. The
// used-indexes test is a regression pin: a prepared artifact whose
// used_indexes omits a probed index is exactly the over-eviction bug
// class fixed in the snapshot-invalidation PR — a plan like that must
// never reach the cache again.
#include "src/opt/plan_check.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/value_column.h"
#include "src/engine/columnar/column_batch.h"
#include "src/engine/database.h"
#include "src/engine/planner.h"
#include "src/opt/join_graph.h"
#include "src/xml/parser.h"

namespace xqjg::opt {
namespace {

using algebra::ValidationError;
using engine::Database;
using engine::PhysKind;
using engine::PhysNode;
using engine::PhysicalPlan;
using ::testing::AssertionFailure;
using ::testing::AssertionResult;
using ::testing::AssertionSuccess;

QualTerm QT(int alias, const std::string& col) {
  QualTerm t;
  t.alias = alias;
  t.col = col;
  return t;
}

QualComparison Cmp(QualTerm lhs, algebra::CmpOp op, QualTerm rhs) {
  QualComparison c;
  c.lhs = std::move(lhs);
  c.op = op;
  c.rhs = std::move(rhs);
  return c;
}

/// Minimal well-formed single-alias graph: //item over d0.
JoinGraph OneAliasGraph() {
  JoinGraph g;
  g.num_aliases = 1;
  g.predicates.push_back(Cmp(QT(0, "name"), algebra::CmpOp::kEq,
                             QT(-1, "")));
  g.predicates.back().rhs.constant = Value::String("item");
  g.item = QT(0, "pre");
  g.select_list = {QT(0, "pre")};
  return g;
}

AssertionResult Reports(const std::vector<ValidationError>& errors,
                        const std::string& invariant) {
  for (const ValidationError& err : errors) {
    if (err.invariant == invariant) return AssertionSuccess();
  }
  auto failure = AssertionFailure()
                 << "no error with invariant '" << invariant << "'; got "
                 << errors.size() << " error(s)";
  for (const ValidationError& err : errors) {
    failure << "\n  " << err.ToString();
  }
  return failure;
}

// ---------------------------------------------------------------------
// Join-graph checks
// ---------------------------------------------------------------------

TEST(CheckJoinGraphTest, WellFormedGraphHasNoErrors) {
  auto errors = CheckJoinGraph(OneAliasGraph(), "test");
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

TEST(CheckJoinGraphTest, ZeroAliasesIsAliasRange) {
  JoinGraph g;
  EXPECT_TRUE(Reports(CheckJoinGraph(g, "test"), "alias-range"));
}

TEST(CheckJoinGraphTest, TooManyAliasesForUint32MaskIsAliasRange) {
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 40;  // alias sets are uint32 masks: 32 max
  EXPECT_TRUE(Reports(CheckJoinGraph(g, "test"), "alias-range"));
}

TEST(CheckJoinGraphTest, TermPastLastAliasIsAliasRange) {
  JoinGraph g = OneAliasGraph();
  g.predicates.push_back(Cmp(QT(0, "pre"), algebra::CmpOp::kEq,
                             QT(3, "pre")));  // graph has 1 alias
  EXPECT_TRUE(Reports(CheckJoinGraph(g, "test"), "alias-range"));
}

TEST(CheckJoinGraphTest, UnknownDocColumnIsColumnRef) {
  JoinGraph g = OneAliasGraph();
  g.select_list.push_back(QT(0, "not_a_doc_column"));
  EXPECT_TRUE(Reports(CheckJoinGraph(g, "test"), "column-ref"));
}

TEST(CheckJoinGraphTest, ParamSlotPastDeclarationsIsParamSlot) {
  JoinGraph g = OneAliasGraph();
  QualTerm marker;
  marker.param = 5;
  marker.param_name = "x";
  g.predicates.push_back(
      Cmp(QT(0, "value"), algebra::CmpOp::kEq, marker));
  EXPECT_TRUE(Reports(CheckJoinGraph(g, "test", /*num_params=*/2),
                      "param-slot"));
  // With the declaration count out of scope the upper bound is skipped.
  EXPECT_TRUE(CheckJoinGraph(g, "test", algebra::kParamsUnknown).empty());
}

TEST(CheckJoinGraphTest, NamelessParamMarkerIsParamSlot) {
  JoinGraph g = OneAliasGraph();
  QualTerm marker;
  marker.param = 0;  // no param_name
  g.predicates.push_back(
      Cmp(QT(0, "value"), algebra::CmpOp::kEq, marker));
  EXPECT_TRUE(Reports(CheckJoinGraph(g, "test"), "param-slot"));
}

TEST(CheckJoinGraphTest, AbsentItemIsTailSortkey) {
  JoinGraph g = OneAliasGraph();
  g.item = QualTerm{};  // no result column
  EXPECT_TRUE(Reports(CheckJoinGraph(g, "test"), "tail-sortkey"));
}

TEST(CheckJoinGraphTest, DistinctPayloadMissingSortKeyTermIsTailSortkey) {
  // The δ payload must cover the sort key, else adjacent-row dedup after
  // the sort misses duplicates. Here the sort key is (d0.level, d0.pre)
  // but the payload only carries d0.pre.
  JoinGraph g = OneAliasGraph();
  g.distinct = true;
  g.order_by = {QT(0, "level")};
  auto errors = CheckJoinGraph(g, "test");
  ASSERT_TRUE(Reports(errors, "tail-sortkey"));
  bool found = false;
  for (const ValidationError& err : errors) {
    if (err.detail.find("missing from the DISTINCT payload") !=
        std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(CheckJoinGraphTest, DistinctPayloadCoveringSortKeyIsAccepted) {
  JoinGraph g = OneAliasGraph();
  g.distinct = true;
  g.order_by = {QT(0, "level")};
  g.select_list = {QT(0, "level"), QT(0, "pre")};
  auto errors = CheckJoinGraph(g, "test");
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

// ---------------------------------------------------------------------
// Physical-plan checks
// ---------------------------------------------------------------------

class PlanCheckTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    doc_ = new xml::DocTable();
    ASSERT_TRUE(xml::LoadDocument(doc_, "t.xml",
                                  "<r><a id=\"1\"><b>x</b></a>"
                                  "<a id=\"2\"><b>y</b></a></r>")
                    .ok());
    db_ = Database::Build(*doc_).release();
    ASSERT_TRUE(db_->CreateIndex({"nk", {"name", "kind"}, {}, false}).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    delete doc_;
  }

  static std::unique_ptr<PhysNode> Scan(PhysKind kind, int alias) {
    auto node = std::make_unique<PhysNode>();
    node->kind = kind;
    node->alias = alias;
    if (kind == PhysKind::kIxScan) node->index = db_->indexes()[0].get();
    return node;
  }

  static std::unique_ptr<PhysNode> Join(PhysKind kind,
                                        std::unique_ptr<PhysNode> left,
                                        std::unique_ptr<PhysNode> right) {
    auto node = std::make_unique<PhysNode>();
    node->kind = kind;
    node->left = std::move(left);
    node->right = std::move(right);
    return node;
  }

  /// graph must outlive the returned plan (the plan borrows it).
  static PhysicalPlan Plan(std::unique_ptr<PhysNode> root,
                           const JoinGraph& graph) {
    PhysicalPlan plan;
    plan.root = std::move(root);
    plan.graph = &graph;
    return plan;
  }

  static xml::DocTable* doc_;
  static Database* db_;
};

xml::DocTable* PlanCheckTest::doc_ = nullptr;
Database* PlanCheckTest::db_ = nullptr;

TEST_F(PlanCheckTest, WellFormedPlanHasNoErrors) {
  JoinGraph g = OneAliasGraph();
  PhysicalPlan plan = Plan(Scan(PhysKind::kTbScan, 0), g);
  auto errors = CheckPhysicalPlanErrors(plan, *db_, {}, "test");
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

TEST_F(PlanCheckTest, NullRootIsPhysStructure) {
  JoinGraph g = OneAliasGraph();
  PhysicalPlan plan;
  plan.graph = &g;
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "phys-structure"));
}

TEST_F(PlanCheckTest, ScanWithChildIsPhysStructure) {
  JoinGraph g = OneAliasGraph();
  auto root = Scan(PhysKind::kTbScan, 0);
  root->left = Scan(PhysKind::kTbScan, 0);
  PhysicalPlan plan = Plan(std::move(root), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "phys-structure"));
}

TEST_F(PlanCheckTest, UnscannedAliasIsPhysStructure) {
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 2;  // d1 exists but no node scans it
  PhysicalPlan plan = Plan(Scan(PhysKind::kTbScan, 0), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "phys-structure"));
}

TEST_F(PlanCheckTest, AliasScannedTwiceIsPhysStructure) {
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 2;
  PhysicalPlan plan = Plan(Join(PhysKind::kNlJoin,
                                Scan(PhysKind::kTbScan, 0),
                                Scan(PhysKind::kTbScan, 0)),
                           g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "phys-structure"));
}

TEST_F(PlanCheckTest, TableScanWithIndexPointerIsPhysStructure) {
  JoinGraph g = OneAliasGraph();
  auto root = Scan(PhysKind::kTbScan, 0);
  root->index = db_->indexes()[0].get();
  PhysicalPlan plan = Plan(std::move(root), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "phys-structure"));
}

TEST_F(PlanCheckTest, IndexScanWithoutIndexIsIxscanIndex) {
  JoinGraph g = OneAliasGraph();
  auto root = Scan(PhysKind::kIxScan, 0);
  root->index = nullptr;
  PhysicalPlan plan = Plan(std::move(root), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "ixscan-index"));
}

TEST_F(PlanCheckTest, ProbedIndexMissingFromCatalogIsIxscanIndex) {
  JoinGraph g = OneAliasGraph();
  PhysicalPlan plan = Plan(Scan(PhysKind::kIxScan, 0), g);
  std::map<std::string, std::string> catalog;  // empty: index dropped
  PlanCheckContext context;
  context.catalog_index_defs = &catalog;
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, context, "test"),
                      "ixscan-index"));
}

TEST_F(PlanCheckTest, ProbedIndexDefinitionMismatchIsIxscanIndex) {
  JoinGraph g = OneAliasGraph();
  PhysicalPlan plan = Plan(Scan(PhysKind::kIxScan, 0), g);
  std::map<std::string, std::string> catalog{
      {"nk", "nk(kind)"}};  // same name, different key columns
  PlanCheckContext context;
  context.catalog_index_defs = &catalog;
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, context, "test"),
                      "ixscan-index"));
}

// Regression pin for the snapshot-invalidation fix: every probed index
// must be recorded in the prepared artifact's used_indexes, otherwise
// DDL on that index would fail to invalidate the cached plan and an
// execution could probe a dropped B-tree.
TEST_F(PlanCheckTest, ProbedIndexMissingFromUsedIndexesIsUsedIndexes) {
  JoinGraph g = OneAliasGraph();
  PhysicalPlan plan = Plan(Scan(PhysKind::kIxScan, 0), g);
  std::map<std::string, std::string> used;  // artifact forgot the index
  PlanCheckContext context;
  context.used_indexes = &used;
  auto errors = CheckPhysicalPlanErrors(plan, *db_, context, "test");
  ASSERT_TRUE(Reports(errors, "used-indexes"));

  // Recording it (name + rendered definition) clears the error.
  used["nk"] = db_->indexes()[0]->def.ToString();
  errors = CheckPhysicalPlanErrors(plan, *db_, context, "test");
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

TEST_F(PlanCheckTest, StaleUsedIndexesDefinitionIsUsedIndexes) {
  JoinGraph g = OneAliasGraph();
  PhysicalPlan plan = Plan(Scan(PhysKind::kIxScan, 0), g);
  std::map<std::string, std::string> used{{"nk", "nk(level,parent)"}};
  PlanCheckContext context;
  context.used_indexes = &used;
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, context, "test"),
                      "used-indexes"));
}

TEST_F(PlanCheckTest, JoinPredOverAliasOutsideSubtreeIsPredBinding) {
  // Inner join's edge predicate references d2, which is scanned by the
  // *outer* join's right input — the column does not exist yet where the
  // predicate runs.
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 3;
  auto inner = Join(PhysKind::kNlJoin, Scan(PhysKind::kTbScan, 0),
                    Scan(PhysKind::kTbScan, 1));
  inner->preds.push_back(
      Cmp(QT(0, "pre"), algebra::CmpOp::kEq, QT(2, "pre")));
  auto root =
      Join(PhysKind::kNlJoin, std::move(inner), Scan(PhysKind::kTbScan, 2));
  PhysicalPlan plan = Plan(std::move(root), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "pred-binding"));
}

TEST_F(PlanCheckTest, ScanPredMayProbeOuterAliases) {
  // A parameterized inner scan of an NLJOIN probes the outer's columns;
  // that is not a pred-binding violation.
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 2;
  auto inner = Scan(PhysKind::kTbScan, 1);
  inner->preds.push_back(
      Cmp(QT(1, "parent"), algebra::CmpOp::kEq, QT(0, "pre")));
  auto root = Join(PhysKind::kNlJoin, Scan(PhysKind::kTbScan, 0),
                   std::move(inner));
  PhysicalPlan plan = Plan(std::move(root), g);
  auto errors = CheckPhysicalPlanErrors(plan, *db_, {}, "test");
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

TEST_F(PlanCheckTest, UnknownPredicateColumnIsColumnRef) {
  JoinGraph g = OneAliasGraph();
  auto root = Scan(PhysKind::kTbScan, 0);
  root->preds.push_back(
      Cmp(QT(0, "no_such_col"), algebra::CmpOp::kEq, QT(0, "pre")));
  PhysicalPlan plan = Plan(std::move(root), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "column-ref"));
}

TEST_F(PlanCheckTest, NumericVsStringHashKeyIsHsjoinKeyTypes) {
  // d0.pre is an int column, d1.name is dictionary-encoded string: the
  // build and probe hashes can never collide on equal values, so the
  // join silently returns nothing. This is the dict-code vs plain-string
  // class of bug the columnar hash join is exposed to.
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 2;
  auto root = Join(PhysKind::kHsJoin, Scan(PhysKind::kTbScan, 0),
                   Scan(PhysKind::kTbScan, 1));
  root->preds.push_back(
      Cmp(QT(0, "pre"), algebra::CmpOp::kEq, QT(1, "name")));
  PhysicalPlan plan = Plan(std::move(root), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "hsjoin-key-types"));
}

TEST_F(PlanCheckTest, MatchingNumericHashKeysAreAccepted) {
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 2;
  auto root = Join(PhysKind::kHsJoin, Scan(PhysKind::kTbScan, 0),
                   Scan(PhysKind::kTbScan, 1));
  root->preds.push_back(
      Cmp(QT(0, "pre"), algebra::CmpOp::kEq, QT(1, "parent")));
  PhysicalPlan plan = Plan(std::move(root), g);
  auto errors = CheckPhysicalPlanErrors(plan, *db_, {}, "test");
  EXPECT_TRUE(errors.empty())
      << (errors.empty() ? "" : errors.front().ToString());
}

TEST_F(PlanCheckTest, SumOverStringColumnIsHsjoinKeyTypes) {
  JoinGraph g = OneAliasGraph();
  g.num_aliases = 2;
  auto root = Join(PhysKind::kHsJoin, Scan(PhysKind::kTbScan, 0),
                   Scan(PhysKind::kTbScan, 1));
  QualTerm sum = QT(0, "name");
  sum.alias2 = 0;
  sum.col2 = "pre";  // name + pre: arithmetic over a string column
  root->preds.push_back(Cmp(sum, algebra::CmpOp::kEq, QT(1, "pre")));
  PhysicalPlan plan = Plan(std::move(root), g);
  EXPECT_TRUE(Reports(CheckPhysicalPlanErrors(plan, *db_, {}, "test"),
                      "hsjoin-key-types"));
}

// ---------------------------------------------------------------------
// ColumnBatch checks (batch-sel)
// ---------------------------------------------------------------------

namespace columnar = engine::columnar;

columnar::ColumnBatch SmallBatch() {
  columnar::ColumnBatch batch;
  batch.schema = {"pre", "parent"};
  batch.cols = {
      std::make_shared<ValueColumn>(ValueColumn::Ints({0, 1, 2, 3})),
      std::make_shared<ValueColumn>(ValueColumn::Ints({-1, 0, 0, 1}))};
  batch.num_rows = 4;
  return batch;
}

TEST(CheckColumnBatchTest, DenseBatchIsAccepted) {
  EXPECT_TRUE(CheckColumnBatch(SmallBatch(), "test").ok());
}

TEST(CheckColumnBatchTest, LazyBatchWithValidSelectionIsAccepted) {
  columnar::ColumnBatch batch = SmallBatch();
  batch.sel =
      std::make_shared<const std::vector<uint32_t>>(
          std::vector<uint32_t>{0, 2});
  batch.num_rows = 2;
  EXPECT_TRUE(CheckColumnBatch(batch, "test").ok());
}

TEST(CheckColumnBatchTest, SchemaColumnCountMismatchIsRejected) {
  columnar::ColumnBatch batch = SmallBatch();
  batch.schema.push_back("orphan");
  Status st = CheckColumnBatch(batch, "test");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("batch-sel"), std::string::npos);
}

TEST(CheckColumnBatchTest, UnequalPhysicalLengthsAreRejected) {
  columnar::ColumnBatch batch = SmallBatch();
  batch.cols[1] =
      std::make_shared<ValueColumn>(ValueColumn::Ints({-1, 0}));
  EXPECT_FALSE(CheckColumnBatch(batch, "test").ok());
}

TEST(CheckColumnBatchTest, SelectionSizeVsNumRowsMismatchIsRejected) {
  columnar::ColumnBatch batch = SmallBatch();
  batch.sel =
      std::make_shared<const std::vector<uint32_t>>(
          std::vector<uint32_t>{0, 2});
  // num_rows left at 4: disagrees with the 2-entry selection vector.
  EXPECT_FALSE(CheckColumnBatch(batch, "test").ok());
}

TEST(CheckColumnBatchTest, OutOfRangeSelectionEntryIsRejected) {
  columnar::ColumnBatch batch = SmallBatch();
  batch.sel =
      std::make_shared<const std::vector<uint32_t>>(
          std::vector<uint32_t>{0, 9});  // 4 physical rows
  batch.num_rows = 2;
  Status st = CheckColumnBatch(batch, "test");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("physical row 9"), std::string::npos);
}

TEST(CheckColumnBatchTest, NonIncreasingSelectionIsRejected) {
  // Filters preserve row order; a reordered selection vector would
  // silently permute results downstream.
  columnar::ColumnBatch batch = SmallBatch();
  batch.sel =
      std::make_shared<const std::vector<uint32_t>>(
          std::vector<uint32_t>{2, 1});
  batch.num_rows = 2;
  EXPECT_FALSE(CheckColumnBatch(batch, "test").ok());
}

TEST(CheckColumnBatchTest, DenseRowCountMismatchIsRejected) {
  columnar::ColumnBatch batch = SmallBatch();
  batch.num_rows = 3;  // columns hold 4 physical rows, no selection
  EXPECT_FALSE(CheckColumnBatch(batch, "test").ok());
}

}  // namespace
}  // namespace xqjg::opt
