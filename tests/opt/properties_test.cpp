// Property inference tests (paper Tables II–V) on hand-built plans.
#include <gtest/gtest.h>

#include "src/algebra/operators.h"
#include "src/opt/properties.h"

namespace xqjg::opt {
namespace {

using algebra::CmpOp;
using algebra::MakeAttach;
using algebra::MakeDistinct;
using algebra::MakeDocTable;
using algebra::MakeJoin;
using algebra::MakeLiteral;
using algebra::MakeProject;
using algebra::MakeRank;
using algebra::MakeRowId;
using algebra::MakeSelect;
using algebra::MakeSerialize;
using algebra::OpPtr;
using algebra::Predicate;
using algebra::Term;

TEST(Properties, IcolsSeededAtSerializeAndNarrowedByProject) {
  OpPtr doc = MakeDocTable();
  OpPtr proj = MakeProject(doc, {{"pos", "pre"}, {"item", "pre"},
                                 {"extra", "size"}});
  OpPtr root = MakeSerialize(proj, "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  EXPECT_EQ(props.Get(proj.get()).icols,
            (std::set<std::string>{"pos", "item"}));
  // The doc leaf only needs the projection's used source.
  EXPECT_EQ(props.Get(doc.get()).icols, (std::set<std::string>{"pre"}));
}

TEST(Properties, IcolsIncludePredicateColumns) {
  OpPtr doc = MakeDocTable();
  OpPtr sel = MakeSelect(doc, Predicate::Single(Term::Col("kind"), CmpOp::kEq,
                                                Term::Const(Value::Int(1))));
  OpPtr proj = MakeProject(sel, {{"pos", "pre"}, {"item", "pre"}});
  OpPtr root = MakeSerialize(proj, "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  EXPECT_TRUE(props.Get(doc.get()).icols.count("kind"));
  EXPECT_TRUE(props.Get(doc.get()).icols.count("pre"));
}

TEST(Properties, ConstsFlowFromLiteralsAndAttach) {
  OpPtr lit = MakeLiteral({"iter"}, {{Value::Int(1)}});
  OpPtr attach = MakeAttach(lit, "pos", Value::Int(9));
  OpPtr proj = MakeProject(attach, {{"i2", "iter"}, {"p2", "pos"}});
  OpPtr root = MakeSerialize(proj, "p2", "i2");
  PropertyMap props = PropertyMap::Infer(root);
  const NodeProps& p = props.Get(proj.get());
  ASSERT_TRUE(p.consts.count("i2"));
  EXPECT_EQ(p.consts.at("i2").AsInt(), 1);
  ASSERT_TRUE(p.consts.count("p2"));
  EXPECT_EQ(p.consts.at("p2").AsInt(), 9);
}

TEST(Properties, KeysDocRowIdDistinctRank) {
  OpPtr doc = MakeDocTable();
  PropertyMap props0 = PropertyMap::Infer(
      MakeSerialize(MakeProject(doc, {{"pos", "pre"}, {"item", "pre"}}),
                    "pos", "item"));
  EXPECT_TRUE(props0.Get(doc.get()).HasSingletonKey("pre"));

  OpPtr proj = MakeProject(doc, {{"iter", "pre"}, {"item", "pre"}});
  OpPtr dedup = MakeDistinct(proj);
  OpPtr rid = MakeRowId(dedup, "inner");
  OpPtr rank = MakeRank(rid, "pos", {"item"});
  OpPtr root = MakeSerialize(rank, "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  EXPECT_TRUE(props.Get(rid.get()).HasSingletonKey("inner"));
  // distinct adds the full schema as a key
  EXPECT_TRUE(props.Get(dedup.get())
                  .HasKeyWithin({"iter", "item"}));
  // rank: pos + (key minus order cols) is a key
  EXPECT_TRUE(props.Get(rank.get()).HasKeyWithin({"pos", "iter", "inner"}));
}

TEST(Properties, EquiJoinOnKeyPreservesKeys) {
  OpPtr doc = MakeDocTable();
  OpPtr left = MakeProject(doc, {{"a", "pre"}, {"av", "value"}});
  OpPtr right = MakeProject(doc, {{"b", "pre"}, {"bv", "name"}});
  OpPtr join = MakeJoin(left, right, Predicate::Single(Term::Col("a"),
                                                       CmpOp::kEq,
                                                       Term::Col("b")));
  OpPtr proj = MakeProject(join, {{"pos", "a"}, {"item", "b"}});
  OpPtr root = MakeSerialize(proj, "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  const NodeProps& p = props.Get(join.get());
  // Both sides keyed on the join column: each side's keys survive.
  EXPECT_TRUE(p.HasSingletonKey("a"));
  EXPECT_TRUE(p.HasSingletonKey("b"));
}

TEST(Properties, SetPropertyFalseWithoutDistinctAboveTrueBelowIt) {
  OpPtr doc = MakeDocTable();
  OpPtr inner_proj = MakeProject(doc, {{"item", "pre"}});
  OpPtr dedup = MakeDistinct(inner_proj);
  OpPtr attach = MakeAttach(dedup, "pos", Value::Int(1));
  OpPtr root = MakeSerialize(attach, "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  EXPECT_FALSE(props.Get(attach.get()).dedup_upstream);
  EXPECT_FALSE(props.Get(dedup.get()).dedup_upstream);
  EXPECT_TRUE(props.Get(inner_proj.get()).dedup_upstream);
  EXPECT_TRUE(props.Get(doc.get()).dedup_upstream);
}

TEST(Properties, ConstStrippedKeys) {
  // iter is constant 1 -> {iter, item} reduces to {item}.
  OpPtr doc = MakeDocTable();
  OpPtr proj = MakeProject(doc, {{"item", "pre"}});
  OpPtr attach = MakeAttach(proj, "iter", Value::Int(1));
  OpPtr dedup = MakeDistinct(attach);
  OpPtr rank = MakeRank(dedup, "pos", {"item"});
  OpPtr root = MakeSerialize(rank, "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  EXPECT_TRUE(props.Get(dedup.get()).HasSingletonKey("item"));
}

TEST(Properties, EqClassesTrackCopiesAndJoinEqualities) {
  OpPtr doc = MakeDocTable();
  OpPtr proj = MakeProject(doc, {{"a", "pre"}, {"b", "pre"}, {"c", "size"}});
  OpPtr root = MakeSerialize(
      MakeProject(proj, {{"pos", "a"}, {"item", "b"}}), "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  const NodeProps& p = props.Get(proj.get());
  ASSERT_TRUE(p.eq_class.count("a"));
  EXPECT_EQ(p.eq_class.at("a"), p.eq_class.at("b"));
  EXPECT_NE(p.eq_class.at("a"), p.eq_class.at("c"));
}

TEST(Properties, EqClassesDoNotAliasAcrossReferences) {
  // Two independent projections of the shared doc leaf must not be
  // considered value-equal.
  OpPtr doc = MakeDocTable();
  OpPtr p1 = MakeProject(doc, {{"x", "pre"}});
  OpPtr p2 = MakeProject(doc, {{"y", "pre"}});
  OpPtr join = MakeJoin(p1, p2, Predicate::Single(Term::Col("x"), CmpOp::kLt,
                                                  Term::Col("y")));
  OpPtr root = MakeSerialize(MakeProject(join, {{"pos", "x"}, {"item", "y"}}),
                             "pos", "item");
  PropertyMap props = PropertyMap::Infer(root);
  const NodeProps& p = props.Get(join.get());
  EXPECT_NE(p.eq_class.at("x"), p.eq_class.at("y"));
}

}  // namespace
}  // namespace xqjg::opt
