// Rule-level tests of the Fig. 5 rewrite system on minimal plans. Each
// test checks a single rewrite's observable effect (via the rule counters
// and plan shape) plus result preservation on a tiny document.
#include <gtest/gtest.h>

#include "src/algebra/dag.h"
#include "src/algebra/printer.h"
#include "src/compiler/compile.h"
#include "src/engine/algebra_exec.h"
#include "src/opt/rules.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::opt {
namespace {

using algebra::CountOps;
using algebra::OpKind;
using algebra::OpPtr;

xml::DocTable TinyDoc() {
  xml::DocTable doc;
  EXPECT_TRUE(xml::LoadDocument(&doc, "t.xml",
                                "<r><a k=\"1\"><b/></a><a k=\"2\"/></r>")
                  .ok());
  return doc;
}

Result<OpPtr> CompileText(const std::string& query) {
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  xquery::NormalizeOptions nopts;
  nopts.context_document = "t.xml";
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr core, xquery::Normalize(ast, nopts));
  return compiler::CompileQuery(core);
}

int Applications(const Rewriter& rw, const std::string& rule) {
  auto it = rw.rule_counts().find(rule);
  return it == rw.rule_counts().end() ? 0 : it->second;
}

TEST(Rules, RankPhaseRemovesAllRanksForSingleStep) {
  auto plan = CompileText("doc(\"t.xml\")/descendant::a");
  ASSERT_TRUE(plan.ok());
  Rewriter rw(algebra::ClonePlan(plan.value()));
  ASSERT_TRUE(rw.RunRankPhase().ok());
  // A single-step query's rank collapses entirely (rule 12 + rule 2).
  EXPECT_EQ(CountOps(rw.root(), OpKind::kRank), 0u);
  EXPECT_GE(Applications(rw, "r12-rank-single"), 1);
}

TEST(Rules, RankSpliceFiresForNestedFor) {
  auto plan = CompileText(
      "for $x in doc(\"t.xml\")//a return $x/child::b");
  ASSERT_TRUE(plan.ok());
  Rewriter rw(algebra::ClonePlan(plan.value()));
  ASSERT_TRUE(rw.Run().ok());
  EXPECT_LE(CountOps(rw.root(), OpKind::kRank), 1u);
}

TEST(Rules, JoinPhaseIntroducesSingleTailDistinct) {
  auto plan = CompileText("doc(\"t.xml\")//a[b]");
  ASSERT_TRUE(plan.ok());
  Rewriter rw(algebra::ClonePlan(plan.value()));
  ASSERT_TRUE(rw.Run().ok());
  EXPECT_EQ(Applications(rw, "r8-tail-distinct"), 1);
  EXPECT_EQ(CountOps(rw.root(), OpKind::kDistinct), 1u);
  EXPECT_GE(Applications(rw, "r6-distinct-dead"), 1);
}

TEST(Rules, RowIdsEliminatedForKeyedLoops) {
  auto plan = CompileText(
      "for $x in doc(\"t.xml\")//a return if ($x/@k) then $x else ()");
  ASSERT_TRUE(plan.ok());
  ASSERT_GE(CountOps(plan.value(), OpKind::kRowId), 1u);
  Rewriter rw(algebra::ClonePlan(plan.value()));
  ASSERT_TRUE(rw.Run().ok());
  EXPECT_EQ(CountOps(rw.root(), OpKind::kRowId), 0u);
}

TEST(Rules, CrossWithLoopLiteralBecomesAttach) {
  auto plan = CompileText("doc(\"t.xml\")/child::r");
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(CountOps(plan.value(), OpKind::kCross), 1u);
  Rewriter rw(algebra::ClonePlan(plan.value()));
  ASSERT_TRUE(rw.Run().ok());
  EXPECT_EQ(CountOps(rw.root(), OpKind::kCross), 0u);
  EXPECT_GE(Applications(rw, "r5-cross-literal"), 1);
}

TEST(Rules, EveryPhasePreservesResults) {
  xml::DocTable doc = TinyDoc();
  const char* queries[] = {
      "doc(\"t.xml\")//a",
      "doc(\"t.xml\")//a[b]",
      "doc(\"t.xml\")//a[@k = \"2\"]",
      "for $x in doc(\"t.xml\")//a return $x/@k",
      "for $x in doc(\"t.xml\")//a return if ($x/b) then $x/@k else ()",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    auto plan = CompileText(q);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    auto before = engine::EvaluateToSequence(plan.value(), doc);
    ASSERT_TRUE(before.ok());

    Rewriter rank_only(algebra::ClonePlan(plan.value()));
    ASSERT_TRUE(rank_only.RunRankPhase().ok());
    auto mid = engine::EvaluateToSequence(rank_only.root(), doc);
    ASSERT_TRUE(mid.ok()) << mid.status().ToString();
    EXPECT_EQ(mid.value(), before.value()) << "after rank phase";

    Rewriter full(algebra::ClonePlan(plan.value()));
    ASSERT_TRUE(full.Run().ok());
    auto after = engine::EvaluateToSequence(full.root(), doc);
    ASSERT_TRUE(after.ok()) << after.status().ToString()
                            << algebra::PrintPlan(full.root());
    EXPECT_EQ(after.value(), before.value()) << "after full isolation";
  }
}

TEST(Rules, IsolationIsIdempotent) {
  auto plan = CompileText("doc(\"t.xml\")//a[b]");
  ASSERT_TRUE(plan.ok());
  Rewriter first(algebra::ClonePlan(plan.value()));
  ASSERT_TRUE(first.Run().ok());
  const size_t ops = CountOps(first.root());
  Rewriter second(algebra::ClonePlan(first.root()));
  ASSERT_TRUE(second.Run().ok());
  EXPECT_EQ(CountOps(second.root()), ops);
}

TEST(Rules, TerminatesOnDeeplyNestedQueries) {
  // Rewriting must terminate (budget is a backstop, not a crutch) even on
  // nesting that defeats full isolation.
  auto plan = CompileText(
      "for $a in doc(\"t.xml\")//a for $b in doc(\"t.xml\")//b "
      "for $r in doc(\"t.xml\")//r "
      "where $a/@k = $r/a/@k return $b");
  ASSERT_TRUE(plan.ok());
  Rewriter rw(algebra::ClonePlan(plan.value()));
  EXPECT_TRUE(rw.Run().ok());
  EXPECT_EQ(rw.rule_counts().count("budget-exhausted"), 0u);
}

}  // namespace
}  // namespace xqjg::opt
