// Admission control: classification, slot accounting, queueing, load
// shedding, and the RAII ticket contract.
#include "src/server/admission.h"

#include <gtest/gtest.h>

#include <thread>
#include <utility>
#include <vector>

namespace xqjg::server {
namespace {

TEST(AdmissionClassifyTest, CostThresholdSplitsTheClasses) {
  AdmissionConfig config;
  config.heavy_cost_threshold = 100.0;
  EXPECT_EQ(Classify(true, 5.0, config), QueryClass::kCheap);
  EXPECT_EQ(Classify(true, 99.9, config), QueryClass::kCheap);
  EXPECT_EQ(Classify(true, 100.0, config), QueryClass::kHeavy);
  EXPECT_EQ(Classify(true, 1e9, config), QueryClass::kHeavy);
  // No plan (native lanes, fallback) → no cost estimate → conservative.
  EXPECT_EQ(Classify(false, 0.0, config), QueryClass::kHeavy);
}

TEST(AdmissionTest, SlotsAdmitUpToCapacityThenShed) {
  AdmissionConfig config;
  config.cheap_slots = 2;
  config.cheap_queue = 0;  // no waiting: full slots shed immediately
  AdmissionController controller(config);

  auto t1 = controller.Admit(QueryClass::kCheap);
  auto t2 = controller.Admit(QueryClass::kCheap);
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  auto t3 = controller.Admit(QueryClass::kCheap);
  ASSERT_FALSE(t3.ok());
  EXPECT_EQ(t3.status().code(), StatusCode::kBusy);

  const AdmissionStats stats = controller.stats();
  EXPECT_EQ(stats.admitted[0], 2);
  EXPECT_EQ(stats.shed[0], 1);
  EXPECT_EQ(stats.running[0], 2);

  // Releasing a ticket frees its slot.
  t1.value().Release();
  auto t4 = controller.Admit(QueryClass::kCheap);
  EXPECT_TRUE(t4.ok());
}

TEST(AdmissionTest, ClassesDoNotStarveEachOther) {
  AdmissionConfig config;
  config.cheap_slots = 1;
  config.heavy_slots = 1;
  config.cheap_queue = 0;
  config.heavy_queue = 0;
  AdmissionController controller(config);

  auto heavy = controller.Admit(QueryClass::kHeavy);
  ASSERT_TRUE(heavy.ok());
  // A saturated heavy class leaves the cheap slots untouched.
  auto cheap = controller.Admit(QueryClass::kCheap);
  EXPECT_TRUE(cheap.ok());
  EXPECT_FALSE(controller.Admit(QueryClass::kHeavy).ok());
}

TEST(AdmissionTest, TicketDestructionReleasesTheSlot) {
  AdmissionConfig config;
  config.cheap_slots = 1;
  config.cheap_queue = 0;
  AdmissionController controller(config);
  {
    auto ticket = controller.Admit(QueryClass::kCheap);
    ASSERT_TRUE(ticket.ok());
    EXPECT_EQ(controller.stats().running[0], 1);
  }  // ticket dies here
  EXPECT_EQ(controller.stats().running[0], 0);
  EXPECT_TRUE(controller.Admit(QueryClass::kCheap).ok());
}

TEST(AdmissionTest, MovedFromTicketsReleaseNothing) {
  AdmissionConfig config;
  config.cheap_slots = 1;
  config.cheap_queue = 0;
  AdmissionController controller(config);
  auto ticket = controller.Admit(QueryClass::kCheap);
  ASSERT_TRUE(ticket.ok());
  Ticket moved = std::move(ticket.value());
  EXPECT_FALSE(ticket.value().valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(controller.stats().running[0], 1);  // one release total
  moved.Release();
  EXPECT_EQ(controller.stats().running[0], 0);
}

TEST(AdmissionTest, QueuedWaiterGetsTheFreedSlot) {
  AdmissionConfig config;
  config.cheap_slots = 1;
  config.cheap_queue = 1;
  config.max_queue_wait_seconds = 10.0;  // the release arrives well before
  AdmissionController controller(config);

  auto holder = controller.Admit(QueryClass::kCheap);
  ASSERT_TRUE(holder.ok());

  std::thread releaser([&] {
    // Give the waiter time to enter the queue, then free the slot.
    while (controller.stats().waiting[0] == 0) {
      std::this_thread::yield();
    }
    holder.value().Release();
  });
  auto waited = controller.Admit(QueryClass::kCheap);  // blocks until release
  releaser.join();
  ASSERT_TRUE(waited.ok());
  EXPECT_EQ(controller.stats().admitted[0], 2);
  EXPECT_EQ(controller.stats().shed[0], 0);
}

TEST(AdmissionTest, ImpatientWaiterIsShedAtTheDeadline) {
  AdmissionConfig config;
  config.cheap_slots = 1;
  config.cheap_queue = 1;
  config.max_queue_wait_seconds = 0.05;
  AdmissionController controller(config);

  auto holder = controller.Admit(QueryClass::kCheap);
  ASSERT_TRUE(holder.ok());
  auto waited = controller.Admit(QueryClass::kCheap);  // no one releases
  ASSERT_FALSE(waited.ok());
  EXPECT_EQ(waited.status().code(), StatusCode::kBusy);
  EXPECT_EQ(controller.stats().shed[0], 1);
  EXPECT_EQ(controller.stats().waiting[0], 0);  // the waiter left the queue
}

TEST(AdmissionTest, FullQueueShedsWithoutWaiting) {
  AdmissionConfig config;
  config.cheap_slots = 1;
  config.cheap_queue = 1;
  config.max_queue_wait_seconds = 5.0;
  AdmissionController controller(config);

  auto holder = controller.Admit(QueryClass::kCheap);
  ASSERT_TRUE(holder.ok());
  std::thread waiter([&] {
    // Occupies the single queue spot until the holder releases.
    auto t = controller.Admit(QueryClass::kCheap);
    EXPECT_TRUE(t.ok());
  });
  while (controller.stats().waiting[0] == 0) {
    std::this_thread::yield();
  }
  // Queue full: this request is shed immediately, not after the wait.
  auto shed = controller.Admit(QueryClass::kCheap);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kBusy);
  holder.value().Release();
  waiter.join();
}

TEST(AdmissionTest, ManyThreadsNeverExceedTheSlotCap) {
  AdmissionConfig config;
  config.cheap_slots = 2;
  config.cheap_queue = 32;
  config.max_queue_wait_seconds = 10.0;
  AdmissionController controller(config);

  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 20; ++j) {
        auto ticket = controller.Admit(QueryClass::kCheap);
        ASSERT_TRUE(ticket.ok()) << ticket.status().ToString();
        const int now = inside.fetch_add(1) + 1;
        int seen = max_inside.load();
        while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
        }
        inside.fetch_sub(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_inside.load(), 2);
  EXPECT_EQ(controller.stats().running[0], 0);
  EXPECT_EQ(controller.stats().admitted[0], 8 * 20);
}

}  // namespace
}  // namespace xqjg::server
