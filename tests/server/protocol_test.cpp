// Wire primitives: writer/reader round trips, bounds checking, and the
// frame layer over a real socketpair.
#include "src/server/protocol.h"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <vector>

namespace xqjg::server {
namespace {

TEST(WireTest, PrimitivesRoundTrip) {
  WireWriter w;
  w.PutU8(0xAB);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFull);
  w.PutF64(-12.5);
  w.PutString("hello");
  w.PutString("");  // empty strings are legal

  WireReader r(w.buffer());
  EXPECT_EQ(r.GetU8().value(), 0xAB);
  EXPECT_EQ(r.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.GetF64().value(), -12.5);
  EXPECT_EQ(r.GetString().value(), "hello");
  EXPECT_EQ(r.GetString().value(), "");
  EXPECT_TRUE(r.Finish().ok());
}

TEST(WireTest, TruncatedPayloadIsACleanError) {
  WireWriter w;
  w.PutU32(7);
  WireReader r(w.buffer());
  ASSERT_TRUE(r.GetU32().ok());
  // Every getter past the end fails instead of reading out of bounds.
  EXPECT_FALSE(r.GetU8().ok());
  EXPECT_FALSE(r.GetU32().ok());
  EXPECT_FALSE(r.GetU64().ok());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(WireTest, StringLengthBeyondPayloadIsRejected) {
  // A string header claiming more bytes than the payload holds must not
  // read past the buffer.
  WireWriter w;
  w.PutU32(1000);  // length prefix with no bytes behind it
  WireReader r(w.buffer());
  EXPECT_FALSE(r.GetString().ok());
}

TEST(WireTest, TrailingBytesAreRejected) {
  WireWriter w;
  w.PutU32(1);
  w.PutU8(0);
  WireReader r(w.buffer());
  ASSERT_TRUE(r.GetU32().ok());
  EXPECT_FALSE(r.Finish().ok());  // the u8 was never consumed
}

TEST(WireTest, StatusMapsAcrossTheWireLosslessly) {
  const Status original = Status::NotFound("no such cursor");
  const ErrorCode code = ErrorCodeFromStatus(original);
  const Status decoded = StatusFromWire(code, original.message());
  EXPECT_EQ(decoded.code(), StatusCode::kNotFound);
  EXPECT_EQ(decoded.message(), "no such cursor");
}

class FrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    close(fds_[0]);
    close(fds_[1]);
  }
  int fds_[2];
};

TEST_F(FrameTest, FramesRoundTripOverASocket) {
  WireWriter w;
  w.PutString("payload");
  ASSERT_TRUE(WriteFrame(fds_[0], Opcode::kPrepare, w.buffer()).ok());
  auto frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame.value().opcode, Opcode::kPrepare);
  WireReader r(frame.value().payload);
  EXPECT_EQ(r.GetString().value(), "payload");
}

TEST_F(FrameTest, EmptyPayloadFramesWork) {
  ASSERT_TRUE(WriteFrame(fds_[0], Opcode::kGoodbye, {}).ok());
  auto frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().opcode, Opcode::kGoodbye);
  EXPECT_TRUE(frame.value().payload.empty());
}

TEST_F(FrameTest, CleanEofIsNotFound) {
  close(fds_[0]);
  fds_[0] = -1;
  auto frame = ReadFrame(fds_[1]);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kNotFound);
  // Re-open a pair so TearDown's close targets a valid fd.
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  close(fds_[1]);
  fds_[1] = fds_[0];
}

TEST_F(FrameTest, OversizedLengthPrefixIsRejectedBeforeTransfer) {
  // Hand-craft a header whose length exceeds the limit; the reader must
  // refuse without waiting for (or allocating) the claimed payload.
  WireWriter header;
  header.PutU32(1024);  // frame claims 1 KiB
  header.PutU8(static_cast<uint8_t>(Opcode::kStats));
  ASSERT_EQ(send(fds_[0], header.buffer().data(), header.buffer().size(), 0),
            static_cast<ssize_t>(header.buffer().size()));
  auto frame = ReadFrame(fds_[1], /*max_frame_bytes=*/16);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FrameTest, BusyStatusBecomesABusyFrame) {
  ASSERT_TRUE(WriteStatusError(fds_[0], Status::Busy("try later")).ok());
  auto frame = ReadFrame(fds_[1]);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame.value().opcode, Opcode::kBusy);
  WireReader r(frame.value().payload);
  EXPECT_EQ(r.GetString().value(), "try later");
}

}  // namespace
}  // namespace xqjg::server
