// Many clients against one live server under concurrent catalog
// mutation. The CI ThreadSanitizer job runs this suite (suite name
// "ServerConcurrency" is part of the TSan regex in ci.yml): races
// between connection threads, the admission controller, the session
// registry, the reaper, and the processor's snapshot swap surface here.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace xqjg::server {
namespace {

constexpr int kClients = 4;
constexpr int kRequestsPerClient = 12;

class ServerConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::XmarkOptions xmark;
    xmark.scale = 0.1;
    ASSERT_TRUE(processor_
                    .LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                  api::XmarkSegmentTags())
                    .ok());
    ASSERT_TRUE(processor_.CreateRelationalIndexes().ok());
  }

  api::XQueryProcessor processor_;
};

TEST_F(ServerConcurrencyTest, ManyClientsShareOneServer) {
  ServerConfig config;
  QueryServer server(&processor_, config);
  ASSERT_TRUE(server.Start().ok());

  // The expected answer, computed before any concurrency begins.
  api::RunOptions run;
  run.context_document = "auction.xml";
  auto oracle =
      processor_.Run("//closed_auction[price > 50.0]/price/text()", run);
  ASSERT_TRUE(oracle.ok());
  ASSERT_FALSE(oracle.value().items.empty());

  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto prepared = client.value()->Prepare(
          "//closed_auction[price > 50.0]/price/text()", 1, "auction.xml");
      if (!prepared.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto executed =
            client.value()->Execute(prepared.value().statement_id);
        if (!executed.ok()) {
          // Admission shedding is a legal outcome under load, anything
          // else is a failure.
          if (executed.status().code() != StatusCode::kBusy) ++failures;
          continue;
        }
        auto items = client.value()->FetchAll(executed.value().cursor_id);
        if (!items.ok() || items.value() != oracle.value().items) ++failures;
      }
      client.value()->Goodbye().ok();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST_F(ServerConcurrencyTest, ClientsRaceCatalogMutations) {
  // Clients keep preparing + executing while a mutator thread reloads a
  // side document through the server's own LOAD_DOC path. In-flight
  // executions drain their pinned snapshots; fresh prepares see the new
  // catalog; nothing crashes or races. Statements over the mutated
  // document may come back stale-rejected — that is the documented
  // re-prepare contract, not a failure.
  ServerConfig config;
  QueryServer server(&processor_, config);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> failures{0};
  std::atomic<bool> stop_mutating{false};

  std::thread mutator([&] {
    data::XmarkOptions side;
    side.scale = 0.05;
    auto client = Client::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      ++failures;
      return;
    }
    int generation = 0;
    while (!stop_mutating.load()) {
      side.seed = static_cast<uint64_t>(1000 + generation++);
      const Status s = client.value()->LoadDocument(
          "side.xml", data::GenerateXmark(side));
      if (!s.ok()) {
        ++failures;
        return;
      }
      std::this_thread::yield();
    }
    client.value()->Goodbye().ok();
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        // Re-prepare each round: half the point is racing Prepare (plan
        // cache + snapshot pin) against the concurrent LOAD_DOC swap.
        auto prepared = client.value()->Prepare(
            "//closed_auction[price > 50.0]/price/text()",
            c % 2 == 0 ? 1 : 2, "auction.xml");
        if (!prepared.ok()) {
          ++failures;
          continue;
        }
        auto executed =
            client.value()->Execute(prepared.value().statement_id);
        if (!executed.ok()) {
          // Busy (admission) and InvalidArgument (stale artifact — the
          // side-document reload resets the index set) are both legal
          // under mutation; crashes and wire corruption are not.
          const StatusCode code = executed.status().code();
          if (code != StatusCode::kBusy &&
              code != StatusCode::kInvalidArgument) {
            ++failures;
          }
          continue;
        }
        auto items = client.value()->FetchAll(executed.value().cursor_id);
        if (!items.ok()) ++failures;
      }
      client.value()->Goodbye().ok();
    });
  }
  for (auto& t : clients) t.join();
  stop_mutating.store(true);
  mutator.join();
  EXPECT_EQ(failures.load(), 0);
  server.Stop();
}

TEST_F(ServerConcurrencyTest, OverloadShedsInsteadOfCollapsing) {
  ServerConfig config;
  config.admission.cheap_slots = 1;
  config.admission.heavy_slots = 1;
  config.admission.cheap_queue = 1;
  config.admission.heavy_queue = 1;
  config.admission.max_queue_wait_seconds = 0.02;
  QueryServer server(&processor_, config);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<int> admitted{0};
  std::atomic<int> shed{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  const int overload_clients = kClients * 2;
  clients.reserve(overload_clients);
  for (int c = 0; c < overload_clients; ++c) {
    clients.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto prepared =
          client.value()->Prepare("//item/name", 1, "auction.xml");
      if (!prepared.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        auto executed =
            client.value()->Execute(prepared.value().statement_id);
        if (executed.ok()) {
          ++admitted;
          auto items = client.value()->FetchAll(executed.value().cursor_id);
          if (!items.ok()) ++failures;
        } else if (executed.status().code() == StatusCode::kBusy) {
          ++shed;
        } else {
          ++failures;
        }
      }
      client.value()->Goodbye().ok();
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Every request resolved one way or the other; under 8 clients vs one
  // slot at least some work was admitted.
  EXPECT_EQ(admitted.load() + shed.load(),
            overload_clients * kRequestsPerClient);
  EXPECT_GT(admitted.load(), 0);
  const AdmissionStats stats = server.stats().admission;
  EXPECT_EQ(stats.shed[0] + stats.shed[1], shed.load());
  server.Stop();
}

}  // namespace
}  // namespace xqjg::server
