// Session lifecycle over a real server on loopback: handshake, prepare/
// execute/fetch, cursor close semantics, quotas, idle reaping (and the
// catalog snapshots reaping must release), and graceful shutdown. The CI
// AddressSanitizer job runs this suite — every path here must be
// leak-free even when sessions are torn down with cursors open.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/xmark.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace xqjg::server {
namespace {

class SessionLifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::XmarkOptions xmark;
    xmark.scale = 0.1;
    ASSERT_TRUE(processor_
                    .LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                  api::XmarkSegmentTags())
                    .ok());
    ASSERT_TRUE(processor_.CreateRelationalIndexes().ok());
  }

  void StartServer(const ServerConfig& config) {
    server_ = std::make_unique<QueryServer>(&processor_, config);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  Result<std::unique_ptr<Client>> Connect() {
    return Client::Connect("127.0.0.1", server_->port());
  }

  api::XQueryProcessor processor_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(SessionLifecycleTest, PrepareExecuteFetchRoundTrip) {
  StartServer(ServerConfig{});
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_GT(client.value()->session_id(), 0u);

  auto prepared = client.value()->Prepare(
      "//closed_auction[price > 50.0]/price/text()",
      /*mode=joingraph*/ 1, "auction.xml");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  EXPECT_TRUE(prepared.value().has_plan);

  auto executed = client.value()->Execute(prepared.value().statement_id);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();

  auto items = client.value()->FetchAll(executed.value().cursor_id);
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  EXPECT_EQ(items.value().size(), executed.value().rows_total);

  // The served result must equal the embedded API's answer.
  api::RunOptions run;
  run.context_document = "auction.xml";
  auto oracle =
      processor_.Run("//closed_auction[price > 50.0]/price/text()", run);
  ASSERT_TRUE(oracle.ok());
  ASSERT_FALSE(oracle.value().items.empty());  // a real answer, not 0 == 0
  EXPECT_EQ(items.value(), oracle.value().items);

  EXPECT_TRUE(client.value()->Goodbye().ok());
}

TEST_F(SessionLifecycleTest, ParameterizedStatementsServeEveryMode) {
  StartServer(ServerConfig{});
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  const std::string query =
      "declare variable $minprice as xs:decimal external; "
      "//closed_auction[price > $minprice]/price/text()";
  // Every mode executes the same parameterized statement over the wire —
  // including the native lanes (the PR 8 carry-over fix).
  for (uint8_t mode = 0; mode <= 3; ++mode) {
    auto prepared = client.value()->Prepare(query, mode, "auction.xml");
    ASSERT_TRUE(prepared.ok())
        << "mode " << int(mode) << ": " << prepared.status().ToString();
    ASSERT_EQ(prepared.value().parameters.size(), 1u);
    EXPECT_EQ(prepared.value().parameters[0].first, "minprice");
    std::map<std::string, Value> params;
    params["minprice"] = Value::Double(50.0);
    auto executed =
        client.value()->Execute(prepared.value().statement_id, params);
    ASSERT_TRUE(executed.ok())
        << "mode " << int(mode) << ": " << executed.status().ToString();
    auto items = client.value()->FetchAll(executed.value().cursor_id);
    ASSERT_TRUE(items.ok());
    api::RunOptions run;
    run.mode = static_cast<api::Mode>(mode);
    run.context_document = "auction.xml";
    auto oracle =
        processor_.Run("//closed_auction[price > 50.0]/price/text()", run);
    ASSERT_TRUE(oracle.ok());
    ASSERT_FALSE(oracle.value().items.empty());
    EXPECT_EQ(items.value(), oracle.value().items) << "mode " << int(mode);
  }
}

TEST_F(SessionLifecycleTest, DoubleCloseAndFetchAfterCloseAreCleanErrors) {
  StartServer(ServerConfig{});
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto prepared =
      client.value()->Prepare("//item/name", 1, "auction.xml");
  ASSERT_TRUE(prepared.ok());
  auto executed = client.value()->Execute(prepared.value().statement_id);
  ASSERT_TRUE(executed.ok());
  const uint32_t cursor = executed.value().cursor_id;

  ASSERT_TRUE(client.value()->CloseCursor(cursor).ok());
  // Double close: a NotFound protocol error, and the connection lives on.
  const Status again = client.value()->CloseCursor(cursor);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.code(), StatusCode::kNotFound);
  // Fetch after close: same contract.
  auto fetched = client.value()->Fetch(cursor, 8);
  ASSERT_FALSE(fetched.ok());
  EXPECT_EQ(fetched.status().code(), StatusCode::kNotFound);
  // The session is still healthy after both errors.
  auto ok_prepare = client.value()->Prepare("//item", 1, "auction.xml");
  EXPECT_TRUE(ok_prepare.ok());
}

TEST_F(SessionLifecycleTest, UnknownStatementAndBadModeAreCleanErrors) {
  StartServer(ServerConfig{});
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto executed = client.value()->Execute(/*statement_id=*/12345);
  ASSERT_FALSE(executed.ok());
  EXPECT_EQ(executed.status().code(), StatusCode::kNotFound);
  auto prepared = client.value()->Prepare("//item", /*mode=*/9, "auction.xml");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kInvalidArgument);
  // A parse error crosses the wire as ParseError, not a dropped link.
  auto bad = client.value()->Prepare("//[[[", 1, "auction.xml");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
}

TEST_F(SessionLifecycleTest, CursorQuotaIsEnforced) {
  ServerConfig config;
  config.session.max_cursors = 2;
  StartServer(config);
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto prepared = client.value()->Prepare("//item", 1, "auction.xml");
  ASSERT_TRUE(prepared.ok());
  auto c1 = client.value()->Execute(prepared.value().statement_id);
  auto c2 = client.value()->Execute(prepared.value().statement_id);
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  auto c3 = client.value()->Execute(prepared.value().statement_id);
  ASSERT_FALSE(c3.ok());  // kQuota → InvalidArgument client-side
  // Closing one frees the quota.
  ASSERT_TRUE(client.value()->CloseCursor(c1.value().cursor_id).ok());
  auto c4 = client.value()->Execute(prepared.value().statement_id);
  EXPECT_TRUE(c4.ok());
}

TEST_F(SessionLifecycleTest, SessionCapShedsWithBusy) {
  ServerConfig config;
  config.max_sessions = 1;
  StartServer(config);
  auto first = Connect();
  ASSERT_TRUE(first.ok());
  auto second = Connect();
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kBusy);
  // Closing the first session admits a new one.
  ASSERT_TRUE(first.value()->Goodbye().ok());
  // The server tears the session down asynchronously after GOODBYE;
  // poll briefly instead of racing it.
  bool admitted = false;
  for (int i = 0; i < 100 && !admitted; ++i) {
    auto third = Connect();
    admitted = third.ok();
    if (!admitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  EXPECT_TRUE(admitted);
}

TEST_F(SessionLifecycleTest, IdleReaperReleasesCursorsAndPinnedSnapshots) {
  ServerConfig config;
  config.idle_timeout_seconds = 0.2;
  config.reap_interval_seconds = 0.05;
  StartServer(config);
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto prepared = client.value()->Prepare("//item", 1, "auction.xml");
  ASSERT_TRUE(prepared.ok());
  auto executed = client.value()->Execute(prepared.value().statement_id);
  ASSERT_TRUE(executed.ok());

  // The open cursor pins the snapshot it executed against. Mutate the
  // catalog so that snapshot stops being current — only the session's
  // cursor (and the plan-cache entry) keeps it alive now.
  std::weak_ptr<const api::CatalogSnapshot> pinned = processor_.snapshot();
  data::XmarkOptions bigger;
  bigger.scale = 0.15;
  ASSERT_TRUE(
      processor_.LoadDocument("auction.xml", data::GenerateXmark(bigger))
          .ok());
  processor_.ClearPlanCache();  // drop the cache's share of the snapshot
  ASSERT_FALSE(pinned.expired());  // the abandoned cursor still pins it

  // Go idle past the timeout: the reaper must close the session, free
  // the cursor, and thereby release the last pin on the old snapshot.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!pinned.expired() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(pinned.expired());
  EXPECT_GE(server_->stats().sessions.reaped, 1);

  // The reaped session's connection answers with a clean expiry (or the
  // reaper already shut the socket down) — never a crash.
  auto after = client.value()->Prepare("//item", 1, "auction.xml");
  EXPECT_FALSE(after.ok());
}

TEST_F(SessionLifecycleTest, StopWithLiveConnectionsShutsDownGracefully) {
  StartServer(ServerConfig{});
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto prepared = client.value()->Prepare("//item", 1, "auction.xml");
  ASSERT_TRUE(prepared.ok());
  auto executed = client.value()->Execute(prepared.value().statement_id);
  ASSERT_TRUE(executed.ok());  // leave the cursor open across Stop
  server_->Stop();  // joins every thread, closes every session
  EXPECT_EQ(server_->stats().sessions.open, 0);
  // The dropped connection surfaces as an error on the next request.
  auto after = client.value()->Fetch(executed.value().cursor_id, 1);
  EXPECT_FALSE(after.ok());
}

TEST_F(SessionLifecycleTest, StatsReportTraffic) {
  StartServer(ServerConfig{});
  auto client = Connect();
  ASSERT_TRUE(client.ok());
  auto prepared = client.value()->Prepare("//item", 1, "auction.xml");
  ASSERT_TRUE(prepared.ok());
  auto stats = client.value()->ServerStats();
  ASSERT_TRUE(stats.ok());
  // Sanity: the JSON mentions the session and admission sections.
  EXPECT_NE(stats.value().find("\"sessions\""), std::string::npos);
  EXPECT_NE(stats.value().find("\"admission\""), std::string::npos);
  EXPECT_EQ(server_->stats().sessions.open, 1);
}

}  // namespace
}  // namespace xqjg::server
