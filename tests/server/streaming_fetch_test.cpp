// Served cursors over a pipelined execution: the admission slot covers
// the join work only, and open cursors retain O(batch) on the server.
//
// HandleExecute acquires an admission ticket, Primes the cursor (runs
// the plan through its final breaker), and releases the slot before
// replying — fetches then drain the stream without ever touching the
// admission controller. Over a 100k-item result with a spill-forcing
// session memory budget this suite pins, over the real wire protocol:
//
//   * running admission slots are back to zero the moment Execute
//     returns, while the cursor is still open and fully undrained;
//   * SessionManagerStats sees the open cursor, and its retained bytes
//     are far below the materialized result (the O(batch) observable,
//     also served in the STATS json);
//   * draining via plain FETCH frames needs no admission slot and
//     returns exactly the embedded API's answer.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/api/processor.h"
#include "src/server/client.h"
#include "src/server/server.h"

namespace xqjg::server {
namespace {

constexpr int64_t kRows = 100000;

std::string FlatDoc(int64_t n) {
  std::string xml = "<root>";
  for (int64_t i = 0; i < n; ++i) {
    xml += "<x>";
    xml += std::to_string(i);
    xml += "</x>";
  }
  xml += "</root>";
  return xml;
}

class StreamingFetchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(processor_.LoadDocument("big.xml", FlatDoc(kRows)).ok());
    ServerConfig config;
    // Spill-forcing session budget: every served execution's breakers go
    // external, so the cursors under test hold run cursors, not results.
    config.session.limits.max_memory_bytes = 128 * 1024;
    server_ = std::make_unique<QueryServer>(&processor_, config);
    const Status started = server_->Start();
    ASSERT_TRUE(started.ok()) << started.ToString();
  }

  Result<std::unique_ptr<Client>> Connect() {
    return Client::Connect("127.0.0.1", server_->port());
  }

  api::XQueryProcessor processor_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(StreamingFetchTest, FetchStreamsWithoutHoldingAnAdmissionSlot) {
  auto client = Connect();
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto prepared = client.value()->Prepare("doc(\"big.xml\")//x",
                                          /*mode=stacked*/ 0, "big.xml");
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();

  auto executed = client.value()->Execute(prepared.value().statement_id);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  // The stacked lane primes through its final breaker, so the server
  // already knows the cardinality (no -1 sentinel here).
  EXPECT_EQ(executed.value().rows_total, kRows);

  // Execute has replied, nothing is drained — and no admission slot is
  // held: the ticket died with HandleExecute, not with the cursor.
  ServerStats stats = server_->stats();
  for (int cls = 0; cls < kNumQueryClasses; ++cls) {
    EXPECT_EQ(stats.admission.running[cls], 0)
        << "class " << cls << " still holds a slot under an open cursor";
    EXPECT_EQ(stats.admission.waiting[cls], 0);
  }

  // The open cursor is visible, and it retains O(batch): far below the
  // ~800 KB of pre ranks a materialized 100k-item result would pin.
  EXPECT_EQ(stats.sessions.open_cursors, 1);
  EXPECT_GT(stats.sessions.retained_cursor_bytes, 0);
  EXPECT_LT(stats.sessions.retained_cursor_bytes, kRows * 8 / 2);

  // The STATS opcode serves the same observable to clients.
  auto json = client.value()->ServerStats();
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json.value().find("\"open_cursors\""), std::string::npos)
      << json.value();
  EXPECT_NE(json.value().find("\"retained_cursor_bytes\""), std::string::npos)
      << json.value();

  // Drain over plain FETCH frames (slot-free) and check the answer
  // against the embedded API.
  auto items = client.value()->FetchAll(executed.value().cursor_id, 1024);
  ASSERT_TRUE(items.ok()) << items.status().ToString();
  api::RunOptions run;
  run.mode = api::Mode::kStacked;
  run.context_document = "big.xml";
  auto oracle = processor_.Run("doc(\"big.xml\")//x", run);
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();
  ASSERT_EQ(oracle.value().items.size(), static_cast<size_t>(kRows));
  EXPECT_EQ(items.value(), oracle.value().items);

  // FetchAll closed the cursor; the gauges return to zero.
  stats = server_->stats();
  EXPECT_EQ(stats.sessions.open_cursors, 0);
  EXPECT_EQ(stats.sessions.retained_cursor_bytes, 0);

  EXPECT_TRUE(client.value()->Goodbye().ok());
}

TEST_F(StreamingFetchTest, ConcurrentCursorGaugesSumAcrossSessions) {
  // Two sessions, each an open undrained cursor: the registry-wide
  // gauges aggregate, and closing one session's cursor releases exactly
  // its share.
  auto a = Connect();
  auto b = Connect();
  ASSERT_TRUE(a.ok() && b.ok());
  for (Client* c : {a.value().get(), b.value().get()}) {
    auto prepared = c->Prepare("doc(\"big.xml\")//x", 0, "big.xml");
    ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
    auto executed = c->Execute(prepared.value().statement_id);
    ASSERT_TRUE(executed.ok()) << executed.status().ToString();
    // Pull one bounded batch so the streams are live mid-drain.
    auto batch = c->Fetch(executed.value().cursor_id, 256);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(batch.value().items.size(), 256u);
    EXPECT_FALSE(batch.value().exhausted);
  }
  ServerStats stats = server_->stats();
  EXPECT_EQ(stats.sessions.open_cursors, 2);
  EXPECT_LT(stats.sessions.retained_cursor_bytes, 2 * kRows * 8 / 2);

  // Session A goes away entirely; B's cursor must be untouched.
  ASSERT_TRUE(a.value()->Goodbye().ok());
  a.value().reset();
  // Goodbye closes the session synchronously before the kOk reply, so
  // the gauges are already settled when the next request runs.
  stats = server_->stats();
  EXPECT_EQ(stats.sessions.open_cursors, 1);
  EXPECT_GT(stats.sessions.retained_cursor_bytes, 0);
}

}  // namespace
}  // namespace xqjg::server
