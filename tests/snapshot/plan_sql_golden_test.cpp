// Golden snapshots of the two user-visible text renderings — the algebra
// printer and the generated SQL — over the paper's Q-family queries.
// These pin the exact output so accidental drift in the compiler,
// isolation rules, printer, or SQL emitter shows up as a reviewable diff.
// Refresh with: XQJG_UPDATE_GOLDENS=1 ctest -R Golden
#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "src/algebra/printer.h"
#include "src/api/paper_queries.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/sql/sqlgen.h"
#include "tests/testutil/fixtures.h"
#include "tests/testutil/golden.h"

namespace xqjg {
namespace {

using testutil::CheckGolden;
using testutil::CompileToPlan;

// Stable id-lowercase file stem for a paper query ("Q1" -> "q1").
std::string Stem(const std::string& id) {
  std::string out = id;
  for (char& c : out) c = static_cast<char>(std::tolower(c));
  return out;
}

TEST(GoldenPrinter, StackedAndIsolatedPlans) {
  for (const auto& q : api::PaperQueries()) {
    SCOPED_TRACE(q.id);
    auto stacked = CompileToPlan(q.text, q.document);
    ASSERT_TRUE(stacked.ok()) << stacked.status().ToString();
    EXPECT_TRUE(CheckGolden("printer/" + Stem(q.id) + "_stacked.txt",
                            algebra::PrintPlan(stacked.value())));

    auto isolated = opt::Isolate(stacked.value());
    ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
    EXPECT_TRUE(CheckGolden("printer/" + Stem(q.id) + "_isolated.txt",
                            algebra::PrintPlan(isolated.value().isolated)));
  }
}

TEST(GoldenSql, StackedCteAndJoinGraph) {
  for (const auto& q : api::PaperQueries()) {
    SCOPED_TRACE(q.id);
    auto stacked = CompileToPlan(q.text, q.document);
    ASSERT_TRUE(stacked.ok()) << stacked.status().ToString();

    auto cte = sql::EmitStackedCte(stacked.value());
    std::string cte_text = cte.ok()
        ? cte.value()
        : "-- EmitStackedCte: " + cte.status().ToString() + "\n";
    EXPECT_TRUE(
        CheckGolden("sql/" + Stem(q.id) + "_stacked.sql", cte_text));

    auto isolated = opt::Isolate(stacked.value());
    ASSERT_TRUE(isolated.ok()) << isolated.status().ToString();
    auto graph = opt::ExtractJoinGraph(isolated.value().isolated);
    // Non-extractable plans fall back to DAG execution (paper: not every
    // query is join-graph material); snapshot that outcome too so a rule
    // change that silently loses extraction shows up here.
    std::string jg_text = graph.ok()
        ? sql::EmitJoinGraphSql(graph.value())
        : "-- ExtractJoinGraph: " + graph.status().ToString() + "\n";
    EXPECT_TRUE(
        CheckGolden("sql/" + Stem(q.id) + "_joingraph.sql", jg_text));
  }
}

}  // namespace
}  // namespace xqjg
