// SQL emitter tests (Figs 8/9 and the CTE baseline).
#include <gtest/gtest.h>

#include "src/compiler/compile.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/sql/sqlgen.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::sql {
namespace {

Result<std::string> JoinGraphSql(const std::string& query) {
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr core, xquery::Normalize(ast));
  XQJG_ASSIGN_OR_RETURN(algebra::OpPtr plan, compiler::CompileQuery(core));
  XQJG_ASSIGN_OR_RETURN(opt::IsolationResult iso, opt::Isolate(plan));
  XQJG_ASSIGN_OR_RETURN(opt::JoinGraph graph,
                        opt::ExtractJoinGraph(iso.isolated));
  return EmitJoinGraphSql(graph);
}

TEST(JoinGraphSql, Q1MatchesFig8Structure) {
  auto sql = JoinGraphSql(
      "doc(\"auction.xml\")/descendant::open_auction[bidder]");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  const std::string& s = sql.value();
  // Fig. 8: three doc instances, DISTINCT, document-node/name tests,
  // containment ranges, ORDER BY the open_auction pre rank.
  EXPECT_NE(s.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(s.find("FROM doc AS d0, doc AS d1, doc AS d2"),
            std::string::npos);
  EXPECT_NE(s.find("= 'auction.xml'"), std::string::npos);
  EXPECT_NE(s.find("= 'open_auction'"), std::string::npos);
  EXPECT_NE(s.find("= 'bidder'"), std::string::npos);
  EXPECT_NE(s.find("ORDER BY"), std::string::npos);
  // containment range with a pre + size endpoint
  EXPECT_NE(s.find(".size"), std::string::npos);
}

TEST(JoinGraphSql, ValueComparisonUsesDataColumn) {
  auto sql = JoinGraphSql(
      "doc(\"a.xml\")//closed_auction[price > 500]/price");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql.value().find(".data > 500"), std::string::npos);
}

TEST(JoinGraphSql, StringComparisonUsesValueColumn) {
  auto sql = JoinGraphSql("doc(\"d.xml\")//phdthesis[year < \"1994\"]");
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_NE(sql.value().find(".value < '1994'"), std::string::npos);
}

TEST(JoinGraphSql, StringLiteralsAreQuotedAndEscaped) {
  opt::JoinGraph graph;
  graph.num_aliases = 1;
  opt::QualComparison cmp;
  cmp.lhs.alias = 0;
  cmp.lhs.col = "value";
  cmp.rhs.constant = Value::String("O'Neil");
  graph.predicates.push_back(cmp);
  graph.item.alias = 0;
  graph.item.col = "pre";
  graph.select_list.push_back(graph.item);
  EXPECT_NE(EmitJoinGraphSql(graph).find("'O''Neil'"), std::string::npos);
}

TEST(StackedCte, EmitsOneCtePerOperatorWithBlockingClauses) {
  auto ast = xquery::Parse(
      "doc(\"auction.xml\")/descendant::open_auction[bidder]");
  auto core = xquery::Normalize(ast.value());
  auto plan = compiler::CompileQuery(core.value());
  ASSERT_TRUE(plan.ok());
  auto sql = EmitStackedCte(plan.value());
  ASSERT_TRUE(sql.ok());
  const std::string& s = sql.value();
  EXPECT_EQ(s.rfind("WITH", 0), 0u);
  // The stacked form keeps its many blocking operators (paper §IV:
  // "an equally large number of DISTINCT and RANK() OVER clauses").
  EXPECT_NE(s.find("SELECT DISTINCT"), std::string::npos);
  EXPECT_NE(s.find("RANK() OVER"), std::string::npos);
  EXPECT_NE(s.find("ROW_NUMBER() OVER"), std::string::npos);
  EXPECT_NE(s.find("ORDER BY"), std::string::npos);
}

}  // namespace
}  // namespace xqjg::sql
