#include "tests/testutil/differential.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "tests/testutil/fixtures.h"

namespace xqjg::testutil {

namespace {

/// splitmix64 — the same deterministic generator as RandomXml.
struct Rng {
  uint64_t state;
  explicit Rng(uint64_t seed) : state(seed + 0x9e3779b97f4a7c15ULL) {}
  uint64_t Next(uint64_t bound) {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z % bound;
  }
};

const char* kTags[] = {"a", "b", "c", "d"};

std::string PathQuery(Rng* rng, const std::string& doc) {
  std::string q = doc;
  const uint64_t steps = 1 + rng->Next(3);
  for (uint64_t s = 0; s < steps; ++s) {
    std::string axis;
    if (s == 0) {
      axis = "//";
    } else {
      switch (rng->Next(5)) {
        case 0:
          axis = "/";
          break;
        case 1:
          axis = "//";
          break;
        case 2:
          axis = "/parent::";
          break;
        case 3:
          axis = "/ancestor::";
          break;
        default:
          axis = "/following-sibling::";
          break;
      }
    }
    q += axis + kTags[rng->Next(4)];
    if (rng->Next(3) == 0) {
      // Predicate over a child's name or value.
      const char* inner = kTags[rng->Next(4)];
      switch (rng->Next(4)) {
        case 0:
          q += std::string("[") + inner + "]";
          break;
        case 1:
          q += std::string("[") + inner + " > " +
               std::to_string(rng->Next(50)) + "]";
          break;
        case 2:
          q += std::string("[") + inner + " < " +
               std::to_string(rng->Next(50)) + "]";
          break;
        default:
          q += std::string("[") + inner + " = " +
               std::to_string(rng->Next(50)) + "]";
          break;
      }
    }
  }
  if (rng->Next(4) == 0) {
    q += rng->Next(2) == 0 ? "/@id" : "/@ref";
  }
  return q;
}

}  // namespace

std::string RandomQuery(uint64_t seed, const std::string& uri) {
  Rng rng(seed);
  const std::string doc = "doc(\"" + uri + "\")";
  const uint64_t shape = rng.Next(10);
  if (shape < 7) return PathQuery(&rng, doc);
  if (shape < 9) {
    // Attribute join between two independent for-clauses.
    const char* t1 = kTags[rng.Next(4)];
    const char* t2 = kTags[rng.Next(4)];
    return "for $x in " + doc + "//" + t1 + " for $y in " + doc + "//" + t2 +
           " where $x/@id = $y/@ref return $y";
  }
  // Value filter + projection.
  const char* t1 = kTags[rng.Next(4)];
  const char* t2 = kTags[rng.Next(4)];
  const char* t3 = kTags[rng.Next(4)];
  return "for $x in " + doc + "//" + t1 + " where $x/" + t2 + " > " +
         std::to_string(rng.Next(50)) + " return $x/" + t3;
}

int FuzzIterations(int fallback) {
  const char* env = std::getenv("XQJG_FUZZ_ITERS");
  if (!env) return fallback;
  const int iters = std::atoi(env);
  return iters > 0 ? iters : fallback;
}

DifferentialHarness::DifferentialHarness(const std::string& uri,
                                         const std::string& xml) {
  auto check = [&](const Status& st, const char* what) {
    if (!st.ok()) {
      std::fprintf(stderr, "differential harness setup failed (%s): %s\n",
                   what, st.ToString().c_str());
      std::abort();
    }
  };
  check(indexed_.LoadDocument(uri, xml), "load (indexed)");
  check(indexed_.CreateRelationalIndexes(), "Table VI indexes");
  check(bare_.LoadDocument(uri, xml), "load (bare)");
}

::testing::AssertionResult DifferentialHarness::Check(
    const std::string& query, int threads) {
  api::RunOptions options;
  options.timeout_seconds = 60;
  // The fuzz sweep doubles as a corpus for the static plan verifier:
  // force it on explicitly (not kAuto) so Release fuzz legs check every
  // randomized plan too.
  options.validate_plans = api::ValidatePlans::kOn;
  options.mode = api::Mode::kNativeWhole;
  auto reference = indexed_.Run(query, options);
  if (!reference.ok()) {
    return ::testing::AssertionFailure()
           << "native reference failed for \"" << query
           << "\": " << reference.status().ToString();
  }
  struct Lane {
    const char* label;
    api::XQueryProcessor* processor;
    api::Mode mode;
    bool use_columnar;
  };
  Lane lanes[] = {
      {"stacked/row", &indexed_, api::Mode::kStacked, false},
      {"stacked/columnar", &indexed_, api::Mode::kStacked, true},
      {"joingraph/row/indexed", &indexed_, api::Mode::kJoinGraph, false},
      {"joingraph/columnar/indexed", &indexed_, api::Mode::kJoinGraph, true},
      {"joingraph/row/bare", &bare_, api::Mode::kJoinGraph, false},
      {"joingraph/columnar/bare", &bare_, api::Mode::kJoinGraph, true},
  };
  for (const Lane& lane : lanes) {
    options.mode = lane.mode;
    options.use_columnar = lane.use_columnar;
    options.threads = threads;
    auto result = lane.processor->Run(query, options);
    if (!result.ok()) {
      return ::testing::AssertionFailure()
             << lane.label << " (threads=" << threads << ") failed for \""
             << query << "\": " << result.status().ToString();
    }
    if (result.value().items != reference.value().items) {
      return ::testing::AssertionFailure()
             << lane.label << " (threads=" << threads
             << ") diverges from native for \"" << query
             << "\": " << result.value().items.size() << " vs "
             << reference.value().items.size() << " items";
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult MutationInterleavedEpisode(uint64_t seed,
                                                      int steps,
                                                      int threads) {
  Rng rng(seed);
  uint64_t doc_seed = seed * 7919;
  std::vector<std::string> uris{"m0.xml"};
  DifferentialHarness harness(
      "m0.xml", RandomXml(doc_seed, 60 + static_cast<int>(seed % 4) * 30));
  api::XQueryProcessor& indexed = harness.indexed();
  api::XQueryProcessor& bare = harness.bare();

  // Loads and reloads go to BOTH processors (the lanes must keep seeing
  // one corpus); the indexed processor re-creates Table VI afterwards
  // because a document load resets the relational index set by contract.
  auto load_both = [&](const std::string& uri,
                       const std::string& xml) -> Status {
    XQJG_RETURN_NOT_OK(indexed.LoadDocument(uri, xml));
    XQJG_RETURN_NOT_OK(bare.LoadDocument(uri, xml));
    return indexed.CreateRelationalIndexes();
  };

  for (int step = 0; step < steps; ++step) {
    // 1. Pre-mutation: native reference + a cursor pinned to the current
    // snapshot, on a rotating relational lane. The cursor executes only
    // when drained (after the mutation), so this is the snapshot-
    // isolation probe: the old block, B-trees, and native DOM must stay
    // alive and bit-identical under the cursor while the catalog moves.
    const std::string pin_uri = uris[rng.Next(uris.size())];
    const std::string pin_query = RandomQuery(seed * 131 + 7 * step, pin_uri);
    api::RunOptions nat;
    nat.timeout_seconds = 60;
    nat.validate_plans = api::ValidatePlans::kOn;
    nat.mode = api::Mode::kNativeWhole;
    auto reference = indexed.Run(pin_query, nat);
    if (!reference.ok()) {
      return ::testing::AssertionFailure()
             << "step " << step << ": native reference failed for \""
             << pin_query << "\": " << reference.status().ToString();
    }
    api::PrepareOptions popts;
    const uint64_t lane = rng.Next(4);
    popts.mode = lane < 2 ? api::Mode::kStacked : api::Mode::kJoinGraph;
    popts.validate_plans = api::ValidatePlans::kOn;
    auto prepared = indexed.Prepare(pin_query, popts);
    if (!prepared.ok()) {
      return ::testing::AssertionFailure()
             << "step " << step << ": Prepare failed for \"" << pin_query
             << "\": " << prepared.status().ToString();
    }
    api::ExecuteOptions eopts;
    eopts.limits.timeout_seconds = 60;
    eopts.use_columnar = (lane % 2) == 1;
    eopts.threads = threads;
    auto cursor = indexed.Execute(prepared.value(), eopts);
    if (!cursor.ok()) {
      return ::testing::AssertionFailure()
             << "step " << step << ": Execute failed for \"" << pin_query
             << "\": " << cursor.status().ToString();
    }

    // 2. Mutate the catalog under the open cursor.
    std::string mutation_label;
    switch (rng.Next(3)) {
      case 0: {
        const std::string uri = "m" + std::to_string(uris.size()) + ".xml";
        mutation_label = "load " + uri;
        const Status st = load_both(
            uri, RandomXml(++doc_seed, 50 + static_cast<int>(rng.Next(4)) * 30));
        if (!st.ok()) {
          return ::testing::AssertionFailure()
                 << "step " << step << ": " << mutation_label
                 << " failed: " << st.ToString();
        }
        uris.push_back(uri);
        break;
      }
      case 1: {
        const std::string uri = uris[rng.Next(uris.size())];
        mutation_label = "reload " + uri;
        const Status st = load_both(
            uri, RandomXml(++doc_seed, 50 + static_cast<int>(rng.Next(4)) * 30));
        if (!st.ok()) {
          return ::testing::AssertionFailure()
                 << "step " << step << ": " << mutation_label
                 << " failed: " << st.ToString();
        }
        break;
      }
      default: {
        mutation_label = "index drop+create";
        indexed.DropRelationalIndexes();
        const Status st = indexed.CreateRelationalIndexes();
        if (!st.ok()) {
          return ::testing::AssertionFailure()
                 << "step " << step << ": " << mutation_label
                 << " failed: " << st.ToString();
        }
        break;
      }
    }

    // 3. Drain the pinned cursor: bit-identical to the pre-mutation
    // native reference.
    auto items = cursor.value()->FetchAll();
    if (!items.ok()) {
      return ::testing::AssertionFailure()
             << "step " << step << ": pinned cursor failed after "
             << mutation_label << " for \"" << pin_query
             << "\": " << items.status().ToString();
    }
    if (items.value() != reference.value().items) {
      return ::testing::AssertionFailure()
             << "step " << step << ": pinned cursor diverges after "
             << mutation_label << " for \"" << pin_query << "\" (lane "
             << lane << ", threads=" << threads
             << "): " << items.value().size() << " vs "
             << reference.value().items.size() << " items";
    }

    // 4. Fresh prepares against the mutated catalog agree on every lane.
    const std::string fresh_uri = uris[rng.Next(uris.size())];
    auto fresh =
        harness.Check(RandomQuery(seed * 977 + 13 * step, fresh_uri), threads);
    if (!fresh) {
      return ::testing::AssertionFailure()
             << "step " << step << " after " << mutation_label << ": "
             << fresh.message();
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace xqjg::testutil
