// Differential / fuzz harness for the storage and executor stack.
//
// One DifferentialHarness owns two XQueryProcessors over the same
// document — one with the Table VI B-tree set, one bare — and checks a
// query's result items across every execution lane that must agree:
//
//   native whole-document interpretation      (the reference)
//   stacked plan, row executor                (materializing oracle)
//   stacked plan, columnar batch executor     (late-mat σ/π chains)
//   join graph, row plan executor             (indexed + bare plans)
//   join graph, columnar plan executor        (indexed + bare plans)
//
// RandomQuery() generates seeded query shapes over the RandomXml tag
// alphabet (axis steps, name tests, value predicates, attribute joins),
// so a storage-layer rewrite is pinned by both fixed paper queries and
// randomized document × query pairs. Same seed → same query.
#ifndef XQJG_TESTS_TESTUTIL_DIFFERENTIAL_H_
#define XQJG_TESTS_TESTUTIL_DIFFERENTIAL_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/api/processor.h"

namespace xqjg::testutil {

/// Deterministic random query over `uri` (expects a RandomXml-shaped
/// document: tags a–d under root r, id/ref attributes, numeric leaves).
std::string RandomQuery(uint64_t seed, const std::string& uri);

/// Iteration count for fuzz loops: XQJG_FUZZ_ITERS when set (CI runs a
/// larger sweep), else `fallback`.
int FuzzIterations(int fallback);

/// One seeded episode of catalog churn interleaved with differential
/// checks: a scripted schedule of mutations (loading a NEW document,
/// reloading an existing URI in place, dropping + re-creating the
/// relational index set) where every step
///   1. computes the native reference and opens a cursor BEFORE the
///      mutation (pinning the pre-mutation snapshot),
///   2. applies the mutation,
///   3. drains the pinned cursor and requires it bit-identical to the
///      pre-mutation reference (snapshot isolation under churn), and
///   4. re-checks a fresh query across every lane against the mutated
///      catalog (delta-reloaded / appended blocks serve the same bytes).
/// Same seed → same schedule. `threads` is the columnar morsel worker
/// count for both the pinned cursor and the fresh checks.
::testing::AssertionResult MutationInterleavedEpisode(uint64_t seed,
                                                      int steps,
                                                      int threads);

class DifferentialHarness {
 public:
  /// Loads `xml` under `uri` into both processors and builds the Table VI
  /// index set on the indexed one. Aborts on parse failure.
  DifferentialHarness(const std::string& uri, const std::string& xml);

  /// Runs `query` through every lane and compares items against the
  /// native reference. Any run error is a failure (the generator only
  /// emits supported shapes). `threads` sets the columnar executors'
  /// morsel worker count on every relational lane (1 = serial; results
  /// must be bit-identical at any value — that is the contract this
  /// harness enforces).
  ::testing::AssertionResult Check(const std::string& query, int threads = 1);

  api::XQueryProcessor& indexed() { return indexed_; }
  api::XQueryProcessor& bare() { return bare_; }

 private:
  api::XQueryProcessor indexed_;
  api::XQueryProcessor bare_;
};

}  // namespace xqjg::testutil

#endif  // XQJG_TESTS_TESTUTIL_DIFFERENTIAL_H_
