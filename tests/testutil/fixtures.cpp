#include "tests/testutil/fixtures.h"

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/compiler/compile.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::testutil {

const char* TinyBibXml() {
  return R"(<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author>Stevens</author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Buneman</author>
    <price>39.95</price>
  </book>
</bib>)";
}

const char* TinySiteXml() {
  return R"(<site>
  <regions>
    <europe>
      <item id="i1"><name>clock</name><price>12.5</price></item>
      <item id="i2"><name>vase</name><price>7.0</price></item>
    </europe>
    <asia>
      <item id="i3"><name>lamp</name><price>30.0</price></item>
    </asia>
  </regions>
  <people>
    <person id="p1"><name>Ada</name></person>
    <person id="p2"><name>Grace</name></person>
  </people>
</site>)";
}

std::string RandomXml(uint64_t seed, int target_nodes) {
  // splitmix64 — fully deterministic across platforms.
  uint64_t state = seed + 0x9e3779b97f4a7c15ULL;
  auto next = [&state](uint64_t bound) {
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z = z ^ (z >> 31);
    return z % bound;
  };
  static const char* kTags[] = {"a", "b", "c", "d"};
  int budget = target_nodes;
  int next_id = 0;
  std::string out = "<r>";
  // Iterative depth-first construction with an explicit stack of open tags.
  std::vector<std::string> open;
  int depth = 0;
  while (budget > 0) {
    if (depth > 0 && (depth >= 5 || next(3) == 0)) {
      out += "</" + open.back() + ">";
      open.pop_back();
      --depth;
      continue;
    }
    const std::string tag = kTags[next(4)];
    --budget;
    out += "<" + tag;
    if (next(3) == 0) {
      out += " id=\"n" + std::to_string(next_id++) + "\"";
    }
    if (next(4) == 0 && next_id > 0) {
      out += " ref=\"n" + std::to_string(next(static_cast<uint64_t>(next_id))) +
             "\"";
    }
    if (next(2) == 0) {
      // Leaf with a numeric value.
      out += ">" + std::to_string(next(50)) + "</" + tag + ">";
    } else {
      out += ">";
      open.push_back(tag);
      ++depth;
    }
  }
  while (!open.empty()) {
    out += "</" + open.back() + ">";
    open.pop_back();
  }
  out += "</r>";
  return out;
}

xml::DocTable LoadDoc(const std::string& uri, const std::string& xml) {
  xml::DocTable table;
  Status st = xml::LoadDocument(&table, uri, xml);
  if (!st.ok()) {
    std::fprintf(stderr, "fixture document %s failed to parse: %s\n",
                 uri.c_str(), st.ToString().c_str());
    std::abort();
  }
  return table;
}

Result<algebra::OpPtr> CompileToPlan(const std::string& query,
                                     const std::string& context_document) {
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  xquery::NormalizeOptions norm;
  norm.context_document = context_document;
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr core, xquery::Normalize(ast, norm));
  return compiler::CompileQuery(core);
}

}  // namespace xqjg::testutil
