#include "tests/testutil/fixtures.h"

#include <cstdio>
#include <cstdlib>

#include "src/compiler/compile.h"
#include "src/xml/parser.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::testutil {

const char* TinyBibXml() {
  return R"(<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author>Stevens</author>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author>Abiteboul</author>
    <author>Buneman</author>
    <price>39.95</price>
  </book>
</bib>)";
}

const char* TinySiteXml() {
  return R"(<site>
  <regions>
    <europe>
      <item id="i1"><name>clock</name><price>12.5</price></item>
      <item id="i2"><name>vase</name><price>7.0</price></item>
    </europe>
    <asia>
      <item id="i3"><name>lamp</name><price>30.0</price></item>
    </asia>
  </regions>
  <people>
    <person id="p1"><name>Ada</name></person>
    <person id="p2"><name>Grace</name></person>
  </people>
</site>)";
}

xml::DocTable LoadDoc(const std::string& uri, const std::string& xml) {
  xml::DocTable table;
  Status st = xml::LoadDocument(&table, uri, xml);
  if (!st.ok()) {
    std::fprintf(stderr, "fixture document %s failed to parse: %s\n",
                 uri.c_str(), st.ToString().c_str());
    std::abort();
  }
  return table;
}

Result<algebra::OpPtr> CompileToPlan(const std::string& query,
                                     const std::string& context_document) {
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr ast, xquery::Parse(query));
  xquery::NormalizeOptions norm;
  norm.context_document = context_document;
  XQJG_ASSIGN_OR_RETURN(xquery::ExprPtr core, xquery::Normalize(ast, norm));
  return compiler::CompileQuery(core);
}

}  // namespace xqjg::testutil
