// Shared test fixtures: tiny XML documents and one-call pipeline helpers
// (parse → normalize → compile) so suites don't re-derive the plumbing.
#ifndef XQJG_TESTS_TESTUTIL_FIXTURES_H_
#define XQJG_TESTS_TESTUTIL_FIXTURES_H_

#include <cstdint>
#include <string>

#include "src/algebra/operators.h"
#include "src/common/status.h"
#include "src/xml/infoset.h"

namespace xqjg::testutil {

/// A 13-node bibliography document (books with authors/titles/prices);
/// small enough to hand-check pre/size/level assertions against.
const char* TinyBibXml();

/// A 3-level <site> document shaped like a miniature XMark instance.
const char* TinySiteXml();

/// Deterministic pseudo-random XML document for differential testing:
/// nested elements over a small tag alphabet with id/ref attributes and
/// numeric text leaves. Same (seed, target_nodes) → same document.
std::string RandomXml(uint64_t seed, int target_nodes = 120);

/// Parses `xml` into a fresh DocTable under `uri`. Aborts the test binary
/// on parse failure (fixtures are assumed well-formed).
xml::DocTable LoadDoc(const std::string& uri, const std::string& xml);

/// parse → normalize → compile. `context_document` resolves absolute
/// paths; leave empty for queries that call doc(...).
Result<algebra::OpPtr> CompileToPlan(const std::string& query,
                                     const std::string& context_document = "");

}  // namespace xqjg::testutil

#endif  // XQJG_TESTS_TESTUTIL_FIXTURES_H_
