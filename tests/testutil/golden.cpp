#include "tests/testutil/golden.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace xqjg::testutil {

namespace fs = std::filesystem;

bool UpdateGoldensRequested() {
  const char* v = std::getenv("XQJG_UPDATE_GOLDENS");
  return v != nullptr && std::string(v) == "1";
}

namespace {

fs::path GoldenPath(const std::string& rel_path) {
  return fs::path(XQJG_SOURCE_DIR) / "tests" / "golden" / rel_path;
}

// Renders a unified-ish diff hint: first differing line of each side.
std::string FirstDifference(const std::string& expected,
                            const std::string& actual) {
  std::istringstream e(expected), a(actual);
  std::string el, al;
  int line = 1;
  while (true) {
    bool have_e = static_cast<bool>(std::getline(e, el));
    bool have_a = static_cast<bool>(std::getline(a, al));
    if (!have_e && !have_a) {
      std::ostringstream out;
      out << "lines identical but bytes differ (likely trailing newline): "
          << "golden is " << expected.size() << " bytes, actual is "
          << actual.size() << " bytes";
      return out.str();
    }
    if (el != al || have_e != have_a) {
      std::ostringstream out;
      out << "first difference at line " << line << ":\n  golden: "
          << (have_e ? el : "<eof>") << "\n  actual: "
          << (have_a ? al : "<eof>");
      return out.str();
    }
    ++line;
  }
}

}  // namespace

::testing::AssertionResult CheckGolden(const std::string& rel_path,
                                       const std::string& actual) {
  fs::path path = GoldenPath(rel_path);
  if (UpdateGoldensRequested()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      return ::testing::AssertionFailure()
             << "cannot write golden file " << path;
    }
    out << actual;
    return ::testing::AssertionSuccess() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return ::testing::AssertionFailure()
           << "golden file missing: " << path
           << " (run with XQJG_UPDATE_GOLDENS=1 to create it)";
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string expected = buf.str();
  if (expected == actual) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "golden mismatch for " << rel_path << "; "
         << FirstDifference(expected, actual)
         << "\n(re-run with XQJG_UPDATE_GOLDENS=1 to accept)";
}

}  // namespace xqjg::testutil
