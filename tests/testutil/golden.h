// Golden-file snapshot helper.
//
// CheckGolden("sql/q1.sql", actual) compares `actual` against
// tests/golden/sql/q1.sql in the source tree. Run the test binary with
// XQJG_UPDATE_GOLDENS=1 to (re)write the files instead of comparing;
// the rewritten files then show up as a reviewable git diff.
#ifndef XQJG_TESTS_TESTUTIL_GOLDEN_H_
#define XQJG_TESTS_TESTUTIL_GOLDEN_H_

#include <string>

#include "gtest/gtest.h"

namespace xqjg::testutil {

/// True when XQJG_UPDATE_GOLDENS=1 is set in the environment.
bool UpdateGoldensRequested();

/// Compares `actual` to the golden file at tests/golden/<rel_path>
/// (update mode: writes it). Use inside a test:
///   EXPECT_TRUE(CheckGolden("printer/q1.txt", text));
::testing::AssertionResult CheckGolden(const std::string& rel_path,
                                       const std::string& actual);

}  // namespace xqjg::testutil

#endif  // XQJG_TESTS_TESTUTIL_GOLDEN_H_
