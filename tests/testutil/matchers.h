// Plan-shape assertion helpers built on algebra::Printer output.
//
// Header-only so suites can use them without extra link deps beyond
// xqjg_testutil (which already links the core library).
#ifndef XQJG_TESTS_TESTUTIL_MATCHERS_H_
#define XQJG_TESTS_TESTUTIL_MATCHERS_H_

#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "src/algebra/printer.h"

namespace xqjg::testutil {

/// Number of `op` operators in the plan, read off the operator census
/// ("serialize:1 project:12 join:5 ..."). Returns 0 for absent operators.
inline int OperatorCount(const algebra::OpPtr& root, const std::string& op) {
  std::istringstream census(algebra::OperatorCensus(root));
  std::string entry;
  while (census >> entry) {
    auto colon = entry.rfind(':');
    if (colon == std::string::npos) continue;
    if (entry.substr(0, colon) == op) {
      return std::stoi(entry.substr(colon + 1));
    }
  }
  return 0;
}

/// Asserts the plan contains exactly `count` operators named `op`.
inline ::testing::AssertionResult PlanHasOpCount(const algebra::OpPtr& root,
                                                 const std::string& op,
                                                 int count) {
  int actual = OperatorCount(root, op);
  if (actual == count) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected " << count << " '" << op << "' operators, found "
         << actual << "\ncensus: " << algebra::OperatorCensus(root)
         << "\nplan:\n" << algebra::PrintPlan(root);
}

/// Asserts the plan contains at least one operator named `op`.
inline ::testing::AssertionResult PlanHasOp(const algebra::OpPtr& root,
                                            const std::string& op) {
  if (OperatorCount(root, op) > 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected at least one '" << op << "' operator\ncensus: "
         << algebra::OperatorCensus(root) << "\nplan:\n"
         << algebra::PrintPlan(root);
}

/// Asserts the plan contains no operator named `op` (e.g. no `distinct`
/// left after join-graph isolation).
inline ::testing::AssertionResult PlanLacksOp(const algebra::OpPtr& root,
                                              const std::string& op) {
  int actual = OperatorCount(root, op);
  if (actual == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected no '" << op << "' operators, found " << actual
         << "\nplan:\n" << algebra::PrintPlan(root);
}

/// Asserts the printed plan tree contains `needle` (anchor for shapes the
/// census can't express, e.g. a specific predicate rendering).
inline ::testing::AssertionResult PlanPrintContains(
    const algebra::OpPtr& root, const std::string& needle) {
  std::string text = algebra::PrintPlan(root);
  if (text.find(needle) != std::string::npos) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << "plan print does not contain \"" << needle << "\":\n" << text;
}

}  // namespace xqjg::testutil

#endif  // XQJG_TESTS_TESTUTIL_MATCHERS_H_
