// Shared gtest main for every xqjg test binary (linked in place of
// GTest::gtest_main by xqjg_add_test).
//
// Its one job beyond RUN_ALL_TESTS: force the static plan verifier on
// for the whole suite, regardless of build type. Debug builds validate
// anyway (ValidatePlans::kAuto), but Release CI legs would silently run
// with the verifier off — and per-rewrite validation is opt-in even in
// Debug. Setting the knobs here (instead of ctest ENVIRONMENT
// properties, which gtest_discover_tests mangles when given a list)
// also covers test binaries run by hand.
//
// setenv with overwrite=0 so an explicit XQJG_VALIDATE_PLANS=0 in the
// environment still wins when someone needs to bisect the verifier
// itself.
#include <gtest/gtest.h>

#include <cstdlib>

int main(int argc, char** argv) {
#ifndef _WIN32
  ::setenv("XQJG_VALIDATE_PLANS", "1", /*overwrite=*/0);
  ::setenv("XQJG_VALIDATE_REWRITES", "1", /*overwrite=*/0);
#endif
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
