// Verifies the pre/size/level infoset encoding against paper Fig. 2 and
// the XML parser/serializer round trip.
#include <gtest/gtest.h>

#include "src/xml/dom.h"
#include "src/xml/infoset.h"
#include "src/xml/parser.h"
#include "src/xml/serializer.h"

namespace xqjg::xml {
namespace {

constexpr const char* kAuctionSnippet = R"(<open_auction id="1">
  <initial>15</initial>
  <bidder>
    <time>18:43</time>
    <increase>4.20</increase>
  </bidder>
</open_auction>)";

DocTable LoadAuction() {
  DocTable table;
  Status st = LoadDocument(&table, "auction.xml", kAuctionSnippet);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return table;
}

// Paper Fig. 2: the exact encoding of the auction.xml snippet.
TEST(Encoding, MatchesFig2) {
  DocTable t = LoadAuction();
  ASSERT_EQ(t.row_count(), 10);

  struct Expected {
    int64_t pre, size, level;
    NodeKind kind;
    const char* name;
    const char* value;
    bool has_data;
    double data;
  };
  const Expected rows[] = {
      {0, 9, 0, NodeKind::kDoc, "auction.xml", "", false, 0},
      {1, 8, 1, NodeKind::kElem, "open_auction", "", false, 0},
      {2, 0, 2, NodeKind::kAttr, "id", "1", true, 1.0},
      {3, 1, 2, NodeKind::kElem, "initial", "15", true, 15.0},
      {4, 0, 3, NodeKind::kText, "", "15", true, 15.0},
      {5, 4, 2, NodeKind::kElem, "bidder", "", false, 0},
      {6, 1, 3, NodeKind::kElem, "time", "18:43", false, 0},
      {7, 0, 4, NodeKind::kText, "", "18:43", false, 0},
      {8, 1, 3, NodeKind::kElem, "increase", "4.20", true, 4.2},
      {9, 0, 4, NodeKind::kText, "", "4.20", true, 4.2},
  };
  for (const auto& e : rows) {
    SCOPED_TRACE(e.pre);
    DocRow row = t.Row(e.pre);
    EXPECT_EQ(row.size, e.size);
    EXPECT_EQ(row.level, e.level);
    EXPECT_EQ(row.kind, e.kind);
    EXPECT_EQ(row.name, e.name);
    EXPECT_EQ(row.value, e.value);
    EXPECT_EQ(row.has_data, e.has_data);
    if (e.has_data) {
      EXPECT_DOUBLE_EQ(row.data, e.data);
    }
  }
}

TEST(Encoding, ParentColumn) {
  DocTable t = LoadAuction();
  EXPECT_EQ(t.Parent(0), -1);  // DOC
  EXPECT_EQ(t.Parent(1), 0);   // open_auction -> DOC
  EXPECT_EQ(t.Parent(2), 1);   // @id -> open_auction
  EXPECT_EQ(t.Parent(3), 1);   // initial -> open_auction
  EXPECT_EQ(t.Parent(4), 3);   // text -> initial
  EXPECT_EQ(t.Parent(5), 1);   // bidder -> open_auction
  EXPECT_EQ(t.Parent(6), 5);
  EXPECT_EQ(t.Parent(7), 6);
  EXPECT_EQ(t.Parent(8), 5);
  EXPECT_EQ(t.Parent(9), 8);
}

TEST(Encoding, RootColumnAndMultipleDocuments) {
  DocTable t;
  ASSERT_TRUE(LoadDocument(&t, "a.xml", "<a><b/></a>").ok());
  ASSERT_TRUE(LoadDocument(&t, "b.xml", "<c/>").ok());
  ASSERT_EQ(t.row_count(), 5);
  EXPECT_EQ(t.Root(0), 0);
  EXPECT_EQ(t.Root(1), 0);
  EXPECT_EQ(t.Root(2), 0);
  EXPECT_EQ(t.Root(3), 3);
  EXPECT_EQ(t.Root(4), 3);
  EXPECT_EQ(t.DocumentRoots(), (std::vector<int64_t>{0, 3}));
  auto a = t.FindDocument("a.xml");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a.value(), 0);
  EXPECT_FALSE(t.FindDocument("missing.xml").ok());
}

TEST(Encoding, IsDescendant) {
  DocTable t = LoadAuction();
  EXPECT_TRUE(t.IsDescendant(1, 9));
  EXPECT_TRUE(t.IsDescendant(5, 7));
  EXPECT_FALSE(t.IsDescendant(3, 5));
  EXPECT_FALSE(t.IsDescendant(5, 5));  // not its own descendant
  EXPECT_FALSE(t.IsDescendant(9, 1));
}

TEST(Encoding, ElementValueOnlyForSmallSubtrees) {
  DocTable t = LoadAuction();
  EXPECT_TRUE(t.has_value(3));   // initial, size 1
  EXPECT_FALSE(t.has_value(5));  // bidder, size 4
  EXPECT_FALSE(t.has_value(1));  // open_auction
}

TEST(Parser, EntitiesAndCdata) {
  DocTable t;
  ASSERT_TRUE(LoadDocument(&t, "e.xml",
                           "<e a=\"x&amp;y\">1 &lt; 2<![CDATA[<raw>]]></e>")
                  .ok());
  // attr value decoded (pre 2: @a of <e>)
  EXPECT_EQ(t.value(2), "x&y");
  // text node (pre 3) combines entity-decoded text and CDATA
  EXPECT_EQ(t.value(3), "1 < 2<raw>");
}

TEST(Parser, NumericCharacterReferences) {
  DocTable t;
  ASSERT_TRUE(LoadDocument(&t, "n.xml", "<n>&#65;&#x42;</n>").ok());
  EXPECT_EQ(t.value(1), "AB");  // element value (size 1)
}

TEST(Parser, RejectsMalformedDocuments) {
  DocTable t;
  EXPECT_FALSE(LoadDocument(&t, "x", "<a><b></a>").ok());
  EXPECT_FALSE(LoadDocument(&t, "x", "<a>").ok());
  EXPECT_FALSE(LoadDocument(&t, "x", "no markup").ok());
  EXPECT_FALSE(LoadDocument(&t, "x", "<a></a><b></b>").ok());
  EXPECT_FALSE(LoadDocument(&t, "x", "<a attr></a>").ok());
  // failed parse leaves the table untouched
  EXPECT_EQ(t.row_count(), 0);
}

TEST(Parser, SkipsPrologCommentsDoctype) {
  DocTable t;
  ASSERT_TRUE(LoadDocument(&t, "p.xml",
                           "<?xml version=\"1.0\"?><!DOCTYPE a>"
                           "<!-- hi --><a><!-- inner --><b/></a>")
                  .ok());
  ASSERT_EQ(t.row_count(), 3);
  EXPECT_EQ(t.name(1), "a");
  EXPECT_EQ(t.name(2), "b");
}

TEST(Serializer, RoundTripsSubtrees) {
  DocTable t = LoadAuction();
  EXPECT_EQ(SerializeSubtree(t, 3), "<initial>15</initial>");
  EXPECT_EQ(SerializeSubtree(t, 6), "<time>18:43</time>");
  EXPECT_EQ(
      SerializeSubtree(t, 5),
      "<bidder><time>18:43</time><increase>4.20</increase></bidder>");
  // whole document from the DOC row
  EXPECT_EQ(SerializeSubtree(t, 0),
            "<open_auction id=\"1\"><initial>15</initial><bidder>"
            "<time>18:43</time><increase>4.20</increase></bidder>"
            "</open_auction>");
}

TEST(Serializer, EscapesSpecialCharacters) {
  DocTable t;
  ASSERT_TRUE(
      LoadDocument(&t, "s.xml", "<s a=\"&quot;q&quot;\">&lt;&amp;&gt;</s>")
          .ok());
  EXPECT_EQ(SerializeSubtree(t, 1),
            "<s a=\"&quot;q&quot;\">&lt;&amp;&gt;</s>");
}

TEST(Serializer, SequenceSeparatesNodes) {
  DocTable t = LoadAuction();
  EXPECT_EQ(SerializeSequence(t, {7, 9}), "18:43\n4.20");
  EXPECT_EQ(SerializeSequence(t, {2}), "id=\"1\"");
}

TEST(Dom, MirrorsTableEncoding) {
  auto doc = ParseDom("auction.xml", kAuctionSnippet);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const XmlNode* root = doc.value()->doc_node.get();
  ASSERT_EQ(root->children.size(), 1u);
  const XmlNode* oa = root->children[0].get();
  EXPECT_EQ(oa->name, "open_auction");
  EXPECT_EQ(oa->pre, 1);
  EXPECT_EQ(oa->subtree_size, 8);
  EXPECT_EQ(oa->attrs.size(), 1u);
  EXPECT_EQ(oa->attrs[0]->pre, 2);
  EXPECT_EQ(StringValue(oa->children[0].get()), "15");
  EXPECT_EQ(doc.value()->node_count, 10);
}

TEST(Dom, TableToDomAgrees) {
  DocTable t = LoadAuction();
  auto dom = TableToDom(t, 0);
  EXPECT_EQ(SerializeSubtree(dom.get()), SerializeSubtree(t, 0));
}

TEST(Dom, DecimalValue) {
  auto doc = ParseDom("d.xml", "<d><p>4.20</p><q>abc</q></d>");
  ASSERT_TRUE(doc.ok());
  const XmlNode* d = doc.value()->doc_node->children[0].get();
  EXPECT_DOUBLE_EQ(*DecimalValue(d->children[0].get()), 4.2);
  EXPECT_FALSE(DecimalValue(d->children[1].get()).has_value());
}

}  // namespace
}  // namespace xqjg::xml
