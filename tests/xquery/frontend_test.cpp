// Lexer / parser / normalizer tests for the XQuery frontend.
#include <gtest/gtest.h>

#include "src/xquery/lexer.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"

namespace xqjg::xquery {
namespace {

TEST(Lexer, TokenizesOperatorsAndNames) {
  auto toks = Tokenize("for $x in doc(\"a.xml\")//b[c >= 4.5] return $x");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const auto& t : toks.value()) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kName);  // 'for'
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  // contains a slash-slash and a >= token
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kSlashSlash),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kGe),
            kinds.end());
}

TEST(Lexer, NestedComments) {
  auto toks = Tokenize("(: outer (: inner :) still :) $x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ(toks.value()[0].kind, TokenKind::kVariable);
}

TEST(Lexer, RejectsUnterminatedString) {
  EXPECT_FALSE(Tokenize("doc(\"oops").ok());
  EXPECT_FALSE(Tokenize("(: unterminated").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

TEST(Parser, PathWithPredicatesRoundTrips) {
  auto e = Parse("/site/people/person[@id = \"p0\"]/name/text()");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e.value()->ToString(),
            "//child::site/child::people/child::person[./attribute::id = "
            "\"p0\"]/child::name/child::text()");
}

TEST(Parser, FlworWithWhereDesugarsToIf) {
  auto e = Parse(
      "for $a in doc(\"d\")//x, $b in doc(\"d\")//y "
      "where $a/u = $b/v return $b");
  ASSERT_TRUE(e.ok());
  // two nested fors, where becomes if
  EXPECT_EQ(e.value()->kind, ExprKind::kFor);
  EXPECT_EQ(e.value()->b->kind, ExprKind::kFor);
  EXPECT_EQ(e.value()->b->b->kind, ExprKind::kIf);
}

TEST(Parser, LetAndAxes) {
  auto e = Parse(
      "let $d := doc(\"d\") return "
      "$d/descendant::a/ancestor::b/following-sibling::c/parent::node()");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e.value()->kind, ExprKind::kLet);
}

TEST(Parser, RejectsOutsideFragment) {
  // else branch must be ()
  EXPECT_EQ(Parse("if ($x) then $y else $z").status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(Parse("for $x in (1, 2) return $x").status().code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(Parse("//a[1]").status().code(), StatusCode::kNotSupported);
  EXPECT_EQ(Parse("//a[b or c]").status().code(), StatusCode::kNotSupported);
}

TEST(Parser, SyntaxErrors) {
  EXPECT_FALSE(Parse("for $x in").ok());
  EXPECT_FALSE(Parse("doc(42)").ok());
  EXPECT_FALSE(Parse("//a[").ok());
  EXPECT_FALSE(Parse("$x/unknown-axis::b").ok());
  EXPECT_FALSE(Parse("").ok());
}

TEST(Normalize, InsertsDdoAroundEveryStep) {
  auto e = Parse("doc(\"a\")/descendant::b/child::c");
  ASSERT_TRUE(e.ok());
  auto core = Normalize(e.value());
  ASSERT_TRUE(core.ok());
  // ddo(step(ddo(step(doc))))
  EXPECT_EQ(core.value()->kind, ExprKind::kDdo);
  EXPECT_EQ(core.value()->a->kind, ExprKind::kStep);
  EXPECT_EQ(core.value()->a->a->kind, ExprKind::kDdo);
  EXPECT_TRUE(IsCore(*core.value()));
}

TEST(Normalize, Q1MatchesPaperCoreForm) {
  // Paper §II-D: Q1 normalizes to
  //   for $x in fs:ddo(doc(...)/descendant::open_auction)
  //   return if (fn:boolean(fs:ddo($x/child::bidder))) then $x else ()
  auto e = Parse("doc(\"auction.xml\")/descendant::open_auction[bidder]");
  ASSERT_TRUE(e.ok());
  auto core = Normalize(e.value());
  ASSERT_TRUE(core.ok());
  const Expr& f = *core.value();
  ASSERT_EQ(f.kind, ExprKind::kFor);
  EXPECT_EQ(f.a->kind, ExprKind::kDdo);
  ASSERT_EQ(f.b->kind, ExprKind::kIf);
  EXPECT_EQ(f.b->a->kind, ExprKind::kEbv);
  EXPECT_EQ(f.b->a->a->kind, ExprKind::kDdo);
  EXPECT_EQ(f.b->b->kind, ExprKind::kVar);
  EXPECT_EQ(f.b->b->var, f.var);
}

TEST(Normalize, DescendantOrSelfChildFusesToDescendant) {
  auto e = Parse("doc(\"a\")//b");
  ASSERT_TRUE(e.ok());
  auto core = Normalize(e.value());
  ASSERT_TRUE(core.ok());
  EXPECT_EQ(core.value()->a->axis, Axis::kDescendant);
}

TEST(Normalize, AttributeAfterDoubleSlashKeepsTwoSteps) {
  auto e = Parse("doc(\"a\")//@id");
  ASSERT_TRUE(e.ok());
  auto core = Normalize(e.value());
  ASSERT_TRUE(core.ok());
  // attribute step over descendant-or-self::node() (no fusion possible)
  EXPECT_EQ(core.value()->a->axis, Axis::kAttribute);
  EXPECT_EQ(core.value()->a->a->a->axis, Axis::kDescendantOrSelf);
}

TEST(Normalize, ConjunctionBecomesNestedIfs) {
  auto e = Parse("//t[a and b]");
  ASSERT_TRUE(e.ok());
  NormalizeOptions options;
  options.context_document = "d.xml";
  auto core = Normalize(e.value(), options);
  ASSERT_TRUE(core.ok()) << core.status().ToString();
  // for $dot in ... return if (ebv(a)) then if (ebv(b)) then $dot
  ASSERT_EQ(core.value()->kind, ExprKind::kFor);
  ASSERT_EQ(core.value()->b->kind, ExprKind::kIf);
  EXPECT_EQ(core.value()->b->b->kind, ExprKind::kIf);
}

TEST(Normalize, AbsolutePathNeedsContext) {
  auto e = Parse("/site/regions");
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(Normalize(e.value()).ok());
  NormalizeOptions options;
  options.context_document = "auction.xml";
  auto core = Normalize(e.value(), options);
  ASSERT_TRUE(core.ok());
  EXPECT_TRUE(IsCore(*core.value()));
}

TEST(Ast, FreeVariables) {
  auto e = Parse("for $x in doc(\"d\")//a return $x/b[. = $y]");
  ASSERT_TRUE(e.ok());
  auto free = FreeVariables(*e.value());
  ASSERT_EQ(free.size(), 1u);
  EXPECT_EQ(free[0], "y");
}

// ---------------------------------------------------------------------------
// Prolog: `declare variable $x (as TYPE)? external;` — external parameters.

TEST(Parser, ExternalDeclarationsBecomeParamMarkers) {
  auto e = Parse(
      "declare variable $who external; "
      "declare variable $minbid as xs:decimal external; "
      "doc(\"a.xml\")//person[name = $who and bid > $minbid]");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  auto params = CollectParams(*e.value());
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "who");
  EXPECT_EQ(params[0].slot, 0);
  EXPECT_FALSE(params[0].numeric);
  EXPECT_EQ(params[1].name, "minbid");
  EXPECT_EQ(params[1].slot, 1);
  EXPECT_TRUE(params[1].numeric);
  // Parameters are not free variables (they bind at Execute, not FLWOR).
  EXPECT_TRUE(FreeVariables(*e.value()).empty());
  // Normalization passes markers through to Core untouched.
  auto core = Normalize(e.value(), {});
  ASSERT_TRUE(core.ok()) << core.status().ToString();
  EXPECT_EQ(CollectParams(*core.value()).size(), 2u);
  EXPECT_TRUE(IsCore(*core.value()));
}

TEST(Parser, PrologTypeNamesAreValidated) {
  EXPECT_TRUE(
      Parse("declare variable $x as xs:string external; doc(\"d\")//a[b = $x]")
          .ok());
  EXPECT_TRUE(Parse(
                  "declare variable $x as xs:integer external; "
                  "doc(\"d\")//a[b = $x]")
                  .ok());
  auto bad_type =
      Parse("declare variable $x as xs:date external; doc(\"d\")//a[b = $x]");
  ASSERT_FALSE(bad_type.ok());
  EXPECT_EQ(bad_type.status().code(), StatusCode::kNotSupported);
  // Declarations must end with 'external;'.
  EXPECT_FALSE(Parse("declare variable $x := 4; doc(\"d\")//a").ok());
  // Duplicates are rejected.
  EXPECT_FALSE(Parse(
                   "declare variable $x external; "
                   "declare variable $x external; doc(\"d\")//a[b = $x]")
                   .ok());
}

TEST(Parser, FlworClausesMustNotShadowExternals) {
  auto shadowed = Parse(
      "declare variable $x external; "
      "for $x in doc(\"d\")//a return $x");
  ASSERT_FALSE(shadowed.ok());
  auto let_shadowed = Parse(
      "declare variable $x external; "
      "let $x := doc(\"d\")//a return $x");
  ASSERT_FALSE(let_shadowed.ok());
  // Undeclared variables still parse as ordinary (free) variables.
  auto plain = Parse("doc(\"d\")//a[b = 1] ");
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(CollectParams(*plain.value()).empty());
}

TEST(Ast, DualAxisIsInvolution) {
  for (Axis axis : {Axis::kChild, Axis::kDescendant, Axis::kDescendantOrSelf,
                    Axis::kSelf, Axis::kFollowing, Axis::kFollowingSibling,
                    Axis::kParent, Axis::kAncestor, Axis::kAncestorOrSelf,
                    Axis::kPreceding, Axis::kPrecedingSibling}) {
    EXPECT_EQ(DualAxis(DualAxis(axis)), axis);
    if (axis != Axis::kSelf) {
      EXPECT_NE(IsForwardAxis(axis), IsForwardAxis(DualAxis(axis)));
    }
  }
}

}  // namespace
}  // namespace xqjg::xquery
