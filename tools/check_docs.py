#!/usr/bin/env python3
"""Documentation checks for CI's docs job.

1. Link check: every relative markdown link in README.md and docs/*.md
   must resolve to an existing file or directory (external http(s) /
   mailto links and pure #anchors are skipped — CI must not depend on
   the network).
2. Snippet compile check: every ```cpp fenced block is wrapped in a
   translation unit (common includes + a small preamble declaring the
   free names snippets conventionally use, e.g. `query`) and compiled
   with `-fsyntax-only` against the real headers, so the README can
   never drift from the actual API.

Exit status 0 iff everything passes. No third-party dependencies.
"""

import argparse
import glob
import os
import re
import subprocess
import sys
import tempfile

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^```(\w*)\s*$")

# The wrapper TU every ```cpp snippet is compiled inside. The preamble
# declares the free variables snippets use by convention; snippets that
# re-declare them simply shadow the preamble (an inner scope).
SNIPPET_PRELUDE = """\
#include <string>
#include <vector>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/engine/database.h"

using namespace xqjg;

[[maybe_unused]] static void doc_snippet_{index}() {{
  [[maybe_unused]] std::string query = "//item";
  [[maybe_unused]] api::PrepareOptions prep;
  {{
{body}
  }}
}}
"""


def check_links(md_path, repo_root):
    errors = []
    base = os.path.dirname(md_path)
    with open(md_path, encoding="utf-8") as f:
        in_fence = False
        for lineno, line in enumerate(f, 1):
            if FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for target in LINK_RE.findall(line):
                if target.startswith(("http://", "https://", "mailto:", "#")):
                    continue
                path = target.split("#", 1)[0]
                if not path:
                    continue
                resolved = os.path.normpath(os.path.join(base, path))
                if not os.path.exists(resolved):
                    rel = os.path.relpath(md_path, repo_root)
                    errors.append(
                        f"{rel}:{lineno}: broken link '{target}' "
                        f"(no such file: {os.path.relpath(resolved, repo_root)})"
                    )
    return errors


def extract_snippets(md_path, language):
    snippets = []
    lines = []
    in_block = None
    start = 0
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            fence = FENCE_RE.match(line)
            if fence and in_block is None:
                in_block = fence.group(1)
                start = lineno + 1
                lines = []
            elif fence:
                if in_block == language:
                    snippets.append((start, "".join(lines)))
                in_block = None
            elif in_block is not None:
                lines.append(line)
    return snippets


def compile_snippets(md_path, repo_root, compiler):
    errors = []
    snippets = extract_snippets(md_path, "cpp")
    rel = os.path.relpath(md_path, repo_root)
    for index, (lineno, body) in enumerate(snippets):
        indented = "\n".join(
            "    " + l if l.strip() else l for l in body.rstrip().splitlines()
        )
        source = SNIPPET_PRELUDE.format(index=index, body=indented)
        with tempfile.NamedTemporaryFile(
            "w", suffix=".cpp", prefix="doc_snippet_", delete=False
        ) as tu:
            tu.write(source)
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only", "-Wall",
                 f"-I{repo_root}", tu_path],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                errors.append(
                    f"{rel}:{lineno}: snippet does not compile:\n"
                    f"{proc.stderr.strip()}\n--- wrapped snippet ---\n{source}"
                )
            else:
                print(f"  {rel}:{lineno}: snippet compiles")
        finally:
            os.unlink(tu_path)
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    )
    ap.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    ap.add_argument(
        "--skip-compile",
        action="store_true",
        help="link-check only (no C++ toolchain available)",
    )
    args = ap.parse_args()

    docs = [os.path.join(args.repo_root, "README.md")]
    docs += sorted(glob.glob(os.path.join(args.repo_root, "docs", "*.md")))
    errors = []
    for md in docs:
        print(f"checking {os.path.relpath(md, args.repo_root)}")
        errors += check_links(md, args.repo_root)
        if not args.skip_compile:
            errors += compile_snippets(md, args.repo_root, args.compiler)
    if errors:
        print("\n".join(errors), file=sys.stderr)
        print(f"\n{len(errors)} documentation problem(s)", file=sys.stderr)
        return 1
    print(f"OK: {len(docs)} file(s) checked")
    return 0


if __name__ == "__main__":
    sys.exit(main())
