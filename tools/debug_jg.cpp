#include <cstdio>
#include "src/algebra/printer.h"
#include "src/algebra/dag.h"
#include "src/compiler/compile.h"
#include "src/opt/isolate.h"
#include "src/opt/join_graph.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"
using namespace xqjg;
int main(int argc, char** argv) {
  const char* q = argc > 1 ? argv[1] :
    "let $a := doc(\"auction.xml\") "
    "for $ca in $a//closed_auction[price > 500], $i in $a//item, $c in $a//category "
    "where $ca/itemref/@item = $i/@id and $i/incategory/@category = $c/@id "
    "return $c/name";
  auto ast = xquery::Parse(q);
  if (!ast.ok()) { printf("parse: %s\n", ast.status().ToString().c_str()); return 1; }
  auto core = xquery::Normalize(ast.value());
  if (!core.ok()) { printf("norm: %s\n", core.status().ToString().c_str()); return 1; }
  auto plan = compiler::CompileQuery(core.value());
  if (!plan.ok()) { printf("compile: %s\n", plan.status().ToString().c_str()); return 1; }
  printf("stacked: ops=%zu  %s\n", algebra::CountOps(plan.value()), algebra::OperatorCensus(plan.value()).c_str());
  auto iso = opt::Isolate(plan.value());
  if (!iso.ok()) { printf("isolate: %s\n", iso.status().ToString().c_str()); return 1; }
  printf("isolated: ops=%zu  %s\n", iso.value().ops_after, algebra::OperatorCensus(iso.value().isolated).c_str());
  for (auto& [k,v] : iso.value().rule_counts) printf("  %s: %d\n", k.c_str(), v);
  auto jg = opt::ExtractJoinGraph(iso.value().isolated);
  if (!jg.ok()) {
    printf("extract: %s\n", jg.status().ToString().c_str());
    puts(algebra::PrintPlan(iso.value().isolated).c_str());
    return 1;
  }
  puts(jg.value().ToString().c_str());
  return 0;
}
