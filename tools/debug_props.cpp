#include <cstdio>
#include "src/algebra/printer.h"
#include "src/algebra/dag.h"
#include "src/compiler/compile.h"
#include "src/opt/rules.h"
#include "src/opt/properties.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"
using namespace xqjg;
int main(int argc, char** argv) {
  const char* q = argc > 1 ? argv[1] :
    "for $x in doc(\"auction.xml\")/descendant::open_auction "
    "return if ($x/child::bidder) then $x else ()";
  auto ast = xquery::Parse(q);
  auto core = xquery::Normalize(ast.value());
  auto plan = compiler::CompileQuery(core.value());
  opt::Rewriter rw(plan.value());
  rw.Run();
  auto props = opt::PropertyMap::Infer(rw.root());
  for (auto* op : algebra::TopoOrder(rw.root())) {
    const auto& p = props.Get(op);
    std::string icols, keys;
    for (auto& c : p.icols) icols += c + ",";
    for (auto& k : p.keys) { keys += "{"; for (auto& c : k) keys += c + ","; keys += "}"; }
    printf("[%d] %s | icols=%s set=%d keys=%s\n", op->id, op->Describe().c_str(),
           icols.c_str(), (int)p.dedup_upstream, keys.c_str());
  }
  return 0;
}
