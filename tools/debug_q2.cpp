#include <cstdio>
#include "src/api/processor.h"
#include "src/api/paper_queries.h"
#include "src/data/xmark.h"
using namespace xqjg;
int main() {
  for (double scale : {0.1, 0.3}) {
    api::XQueryProcessor p;
    data::XmarkOptions x; x.scale = scale;
    p.LoadDocument("auction.xml", data::GenerateXmark(x), {}).ok();
    p.CreateRelationalIndexes().ok();
    api::RunOptions o; o.context_document="auction.xml"; o.timeout_seconds=60;
    o.mode=api::Mode::kNativeWhole;
    auto n = p.Run(api::PaperQueries()[1].text, o);
    o.mode=api::Mode::kJoinGraph;
    auto j = p.Run(api::PaperQueries()[1].text, o);
    printf("scale %.1f native=%zu joingraph=%zu fb=%d\n", scale,
      n.ok()?n.value().result_count():9999, j.ok()?j.value().result_count():9999,
      j.ok()?(int)j.value().used_fallback:-1);
  }
  return 0;
}
