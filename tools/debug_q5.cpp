#include <cstdio>
#include "src/api/processor.h"
#include "src/data/dblp.h"
#include "src/api/paper_queries.h"
using namespace xqjg;
int main() {
  api::XQueryProcessor p;
  data::DblpOptions d; d.publications = 60;
  auto st = p.LoadDocument("dblp.xml", data::GenerateDblp(d), api::DblpSegmentTags());
  if(!st.ok()){printf("%s\n",st.ToString().c_str());return 1;}
  st = p.CreateRelationalIndexes();
  api::RunOptions o; o.context_document="dblp.xml"; o.mode=api::Mode::kJoinGraph;
  auto r = p.Run("/dblp/*[@key = \"conf/vldb2001\" and editor and title]/title", o);
  if(!r.ok()){printf("err %s\n", r.status().ToString().c_str()); return 1;}
  printf("joingraph n=%zu fallback=%d\n", r.value().result_count(), (int)r.value().used_fallback);
  puts(r.value().sql.c_str());
  puts(r.value().explain.c_str());
  o.mode = api::Mode::kStacked;
  auto r2 = p.Run("/dblp/*[@key = \"conf/vldb2001\" and editor and title]/title", o);
  printf("stacked n=%zu\n", r2.value().result_count());
  return 0;
}
