#include <cstdio>
#include "src/algebra/printer.h"
#include "src/algebra/dag.h"
#include "src/compiler/compile.h"
#include "src/opt/rules.h"
#include "src/xquery/normalize.h"
#include "src/xquery/parser.h"
using namespace xqjg;
int main(int argc, char** argv) {
  const char* q = argc > 1 ? argv[1] :
    "for $x in doc(\"auction.xml\")/descendant::open_auction "
    "return if ($x/child::bidder) then $x else ()";
  auto ast = xquery::Parse(q);
  if (!ast.ok()) { printf("parse: %s\n", ast.status().ToString().c_str()); return 1; }
  auto core = xquery::Normalize(ast.value());
  if (!core.ok()) { printf("norm: %s\n", core.status().ToString().c_str()); return 1; }
  auto plan = compiler::CompileQuery(core.value());
  if (!plan.ok()) { printf("compile: %s\n", plan.status().ToString().c_str()); return 1; }
  printf("initial ops=%zu\n%s\n", algebra::CountOps(plan.value()), algebra::OperatorCensus(plan.value()).c_str());
  opt::Rewriter rw(plan.value());
  auto st = rw.RunRankPhase();
  printf("rank phase: %s ops=%zu\n", st.ToString().c_str(), algebra::CountOps(rw.root()));
  for (auto& [k,v] : rw.rule_counts()) printf("  %s: %d\n", k.c_str(), v);
  if (!st.ok()) { puts(algebra::PrintPlan(rw.root()).c_str()); return 1; }
  auto st2 = rw.RunJoinPhase();
  printf("join phase: %s ops=%zu\n", st2.ToString().c_str(), algebra::CountOps(rw.root()));
  for (auto& [k,v] : rw.rule_counts()) printf("  %s: %d\n", k.c_str(), v);
  puts(algebra::PrintPlan(rw.root()).c_str());
  return st2.ok() ? 0 : 1;
}
