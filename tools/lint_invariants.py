#!/usr/bin/env python3
"""Repo-specific invariant lint (run in CI; no dependencies).

Three rules, all born from real bugs in this codebase:

  no-budget-guard  A row-producing loop (push_back / emplace_back /
                   ValueColumn::Append in the loop body) in src/engine/,
                   src/native/, or src/server/ must have a DNF budget
                   guard in scope — a BudgetClock / RegionBudget call
                   (TickRows, Tick, CheckRows, FinishLocalRows, ...)
                   inside the loop or anywhere in the enclosing function.
                   Unguarded loops are how a runaway query escapes
                   ExecLimits (the PR 6 budget-clock work made every
                   executor loop cooperative; this lint keeps it that
                   way). In src/server/ the same rule covers request
                   decode/accumulation loops: those are bounded by the
                   frame-size cap or a per-fetch budget instead, and each
                   such loop carries an explicit allow() saying which.

  unticked-pull    A direct call to a pipeline operator's `NextImpl()`
                   (`stream->NextImpl(...)` / `stream.NextImpl(...)`)
                   anywhere in src/. Batch pulls must go through the
                   public ticking `Next()` wrapper, which runs the
                   batch invariants and the per-batch DNF budget tick —
                   a pipeline loop that pulls via NextImpl silently
                   stops observing ExecLimits (exactly the class of bug
                   the streaming-cursor work guards against: a drain
                   loop that never notices an expired deadline).

  raw-alloc        `new` / `delete` / malloc-family calls anywhere in
                   src/ outside engine/parallel/worker_pool.cpp (which
                   owns thread lifetimes). Everything else uses
                   make_unique / make_shared / containers, so ownership
                   bugs stay impossible by construction.

Suppress a deliberate exception with a trailing comment on the offending
line (or the line above):

    ptr = new Widget();  // xqjg-lint: allow(raw-alloc)
    // xqjg-lint: allow(no-budget-guard): O(1) iterations by construction
    for (auto& x : tiny) out.push_back(f(x));

Exit status: 0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Scopes.
LOOP_DIRS = ("src/engine", "src/native", "src/server")
ALLOC_DIR = "src"
ALLOC_EXEMPT = ("src/engine/parallel/worker_pool.cpp",)

SUPPRESS_RE = re.compile(r"xqjg-lint:\s*allow\(([a-z-]+)\)")

# A loop is "row-producing" when its body appends to a container/column.
PRODUCE_RE = re.compile(r"\b(?:push_back|emplace_back|Append|AppendNull)\s*\(")

# ...and "row-scale" when its header iterates a per-row source (document
# rows, tuples, node candidates; for the serving layer: result items and
# fetch batches) rather than a plan-shaped one (preds, schema columns,
# key columns — all O(plan), bounded by construction).
ROW_SCALE_RE = re.compile(
    r"\b(?:rows|row_count|num_rows|tuples|candidates|rids|matches|"
    r"children|entries|\ball\b|pre|sel|items|n_items|batch)\b")

# Budget guards: BudgetClock / RegionBudget methods, or touching an
# object whose name says it is the budget/clock (the guard may live in
# the enclosing function rather than the loop itself).
GUARD_RE = re.compile(
    r"\b(?:TickRows|TickThrow|TickQuiet|Tick|CheckRows|FinishLocalRows|"
    r"RegionAborted|RegionBudget|BudgetClock)\s*\(|"
    r"\b(?:clock|budget|region)[a-zA-Z0-9]*(?:_\b|_?\.|_?->)|"
    r"\bdeadline\b"  # the native lane's coarse wall-clock guard
)

LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")

ALLOC_RES = (
    re.compile(r"\bnew\s+[A-Za-z_(]"),       # placement/array new included
    re.compile(r"\bdelete\b(?!\s*;)"),        # "= delete;" handled below
    re.compile(r"\b(?:malloc|calloc|realloc|free)\s*\("),
)

# A member-access call of NextImpl is a pull that bypasses the ticking
# Next() wrapper. (The wrapper's own dispatch is an unqualified virtual
# call, so it does not match.)
UNTICKED_PULL_RE = re.compile(r"(?:\.|->)\s*NextImpl\s*\(")


def strip_comments_and_strings(text):
    """Blanks out comments, string and char literals, preserving length
    and newlines (so offsets and line numbers survive)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + (c if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def suppressions(raw_text):
    """line -> set of suppressed rules (applies to that line and the
    next)."""
    sup = {}
    for m in SUPPRESS_RE.finditer(raw_text):
        line = line_of(raw_text, m.start())
        rule = m.group(1)
        sup.setdefault(line, set()).add(rule)
        sup.setdefault(line + 1, set()).add(rule)
    return sup


def matching_brace(text, open_idx):
    """Index just past the brace matching text[open_idx] == '{' (text must
    be comment/string-stripped). Returns len(text) when unbalanced."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


FUNC_OPEN_RE = re.compile(
    r"\)\s*(?:const\s*)?(?:noexcept\s*)?(?:override\s*)?"
    r"(?:->\s*[\w:<>,&*\s]+?)?\s*\{"
)


def enclosing_function_span(text, pos):
    """Span of the innermost function body containing `pos`: walk every
    '{' whose block covers pos and whose opener looks like the end of a
    function signature; the last (innermost) match wins. Falls back to
    the loop itself when nothing matches (lambda-heavy code)."""
    best = None
    for m in FUNC_OPEN_RE.finditer(text, 0, pos + 1):
        open_idx = m.end() - 1
        close = matching_brace(text, open_idx)
        if open_idx < pos < close:
            best = (open_idx, close)
    return best


def lint_loops(rel, raw, text, sup, findings):
    for m in LOOP_RE.finditer(text):
        # Body = the first '{' after the loop header's closing paren.
        open_paren = text.find("(", m.start())
        depth, i = 0, open_paren
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body_open = text.find("{", i)
        semi = text.find(";", i)
        if body_open < 0 or (0 <= semi < body_open):
            continue  # single-statement loop body; too small to matter
        header = text[m.start():i + 1]
        if not ROW_SCALE_RE.search(header):
            continue  # plan-shaped iteration (preds/schema/keys)
        body = text[body_open:matching_brace(text, body_open)]
        if not PRODUCE_RE.search(body):
            continue
        if GUARD_RE.search(body):
            continue
        span = enclosing_function_span(text, m.start())
        if span and GUARD_RE.search(text[span[0]:span[1]]):
            continue
        line = line_of(text, m.start())
        if "no-budget-guard" in sup.get(line, ()):
            continue
        findings.append(
            (rel, line, "no-budget-guard",
             "row-producing loop with no BudgetClock/RegionBudget call in "
             "the loop or its enclosing function"))


def lint_unticked_pulls(rel, raw, text, sup, findings):
    for m in UNTICKED_PULL_RE.finditer(text):
        line = line_of(text, m.start())
        if "unticked-pull" in sup.get(line, ()):
            continue
        findings.append(
            (rel, line, "unticked-pull",
             "direct NextImpl() call bypasses the ticking Next() wrapper "
             "(batch invariants + DNF budget tick) — pull through Next()"))


def lint_allocs(rel, raw, text, sup, findings):
    for alloc_re in ALLOC_RES:
        for m in alloc_re.finditer(text):
            frag = text[max(0, m.start() - 16):m.start()]
            if re.search(r"=\s*$", frag):
                continue  # "Foo(const Foo&) = delete;" and friends
            line = line_of(text, m.start())
            if "raw-alloc" in sup.get(line, ()):
                continue
            findings.append(
                (rel, line, "raw-alloc",
                 "raw allocation (`%s`) — use make_unique/make_shared or "
                 "a container (worker_pool.cpp is the only exemption)"
                 % text[m.start():m.end()].strip()))


def main():
    findings = []
    for root, _, files in os.walk(os.path.join(REPO, ALLOC_DIR)):
        for name in sorted(files):
            if not name.endswith((".cpp", ".h")):
                continue
            path = os.path.join(root, name)
            rel = os.path.relpath(path, REPO)
            with open(path, encoding="utf-8") as f:
                raw = f.read()
            text = strip_comments_and_strings(raw)
            sup = suppressions(raw)
            if rel not in ALLOC_EXEMPT:
                lint_allocs(rel, raw, text, sup, findings)
            lint_unticked_pulls(rel, raw, text, sup, findings)
            if rel.startswith(LOOP_DIRS):
                lint_loops(rel, raw, text, sup, findings)

    findings.sort()
    for rel, line, rule, msg in findings:
        print("%s:%d: [%s] %s" % (rel, line, rule, msg))
    if findings:
        print("\n%d finding(s). Suppress deliberate exceptions with "
              "// xqjg-lint: allow(<rule>)." % len(findings))
        return 1
    print("lint_invariants: clean (%s scanned)" % ALLOC_DIR)
    return 0


if __name__ == "__main__":
    sys.exit(main())
