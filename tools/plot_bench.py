#!/usr/bin/env python3
"""Plot BENCH_*.json trajectories across PRs / commits.

Each input file is one benchmark emission (the ``XQJG_BENCH_JSON``
schema, see docs/BENCH.md). Files are grouped into *runs* by their
parent directory (override the run labels with --labels); within a run,
files are distinguished by their top-level ``"bench"`` discriminator.
For every bench kind present, the script renders one panel with the
bench's headline metrics as lines across the runs — the perf
trajectory.

Rendering backends, in order of preference:
  * matplotlib (PNG or SVG, whatever --out's extension says);
  * a self-contained SVG writer (no third-party packages) — what CI
    uses, so the docs job never needs pip.

Usage:
  python3 tools/plot_bench.py --out trajectory.svg \
      pr4/BENCH_table09.json pr4/BENCH_prepared.json \
      pr5/BENCH_table09.json pr5/BENCH_prepared.json
"""

import argparse
import json
import os
import sys

# ---------------------------------------------------------------------------
# Metric extraction: bench kind -> {series name: value} (seconds-ish,
# lower is better, except *_speedup which is higher-is-better).


def _cell_seconds(cell):
    if not isinstance(cell, dict) or cell.get("na") or cell.get("dnf"):
        return None
    return cell.get("seconds")


def extract_table09(doc):
    series = {}
    for q in doc.get("queries", []):
        qid = q.get("id", "?")
        for mode in ("joingraph_columnar", "joingraph_row"):
            value = _cell_seconds(q.get(mode))
            if value is not None:
                series[f"{qid} {mode}"] = value
    return series


def extract_prepared(doc):
    series = {}
    for q in doc.get("queries", []):
        if q.get("failed"):
            continue
        qid = q.get("id", "?")
        if q.get("cached_execute_seconds") is not None:
            series[f"{qid} cached exec"] = q["cached_execute_seconds"]
    param = doc.get("parameterized")
    if param and not param.get("failed"):
        total = param.get("param_total_seconds")
        literal = param.get("literal_total_seconds")
        if total and literal:
            series["parameterized_speedup"] = literal / total
    return series


def extract_storage(doc):
    scan = doc.get("scan", {})
    iters = scan.get("iters") or 1
    series = {}
    for lane in ("row", "columnar", "dict"):
        value = scan.get(f"{lane}_seconds")
        if value is not None:
            series[f"scan {lane}"] = value / iters
    if doc.get("build_seconds") is not None:
        series["db build"] = doc["build_seconds"]
    if doc.get("index_seconds") is not None:
        series["index build"] = doc["index_seconds"]
    return series


def extract_scaling(doc):
    series = {}
    for point in doc.get("points", []):
        scale = point.get("scale", "?")
        for key in ("joingraph_columnar_seconds", "native_whole_seconds"):
            value = point.get(key)
            if value is not None:
                short = key.replace("_seconds", "")
                series[f"scale {scale} {short}"] = value
    return series


def extract_plan_shapes(doc):
    return {
        f"{q.get('id', '?')} ops_after": q["ops_after"]
        for q in doc.get("queries", [])
        if q.get("ops_after") is not None
    }


def extract_flat_queries(*keys):
    def extract(doc):
        series = {}
        for q in doc.get("queries", []):
            qid = q.get("id", "?")
            for key in keys:
                if q.get(key) is not None:
                    series[f"{qid} {key}"] = q[key]
        return series

    return extract


EXTRACTORS = {
    "table09": extract_table09,
    "prepared_throughput": extract_prepared,
    "storage_layout": extract_storage,
    "scaling_docsize": extract_scaling,
    "plan_shapes": extract_plan_shapes,
    "ablation_indexes": extract_flat_queries("indexed_seconds"),
    "ablation_joinorder": extract_flat_queries("costbased_seconds"),
    "ablation_rules": extract_flat_queries("full_ops"),
}

# ---------------------------------------------------------------------------
# Fallback SVG renderer (no dependencies).

PALETTE = [
    "#4878cf", "#d65f5f", "#59a14f", "#b07aa1", "#e49444",
    "#76b7b2", "#9c755f", "#bab0ac", "#222222", "#edc948",
]


def _svg_escape(text):
    return (
        str(text).replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )


def render_svg(panels, labels, out_path):
    """panels: [(title, {series: [v0, v1, ... per run]})]."""
    width, panel_h, pad = 760, 260, 56
    legend_w = 240
    height = panel_h * max(1, len(panels))
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" font-family="sans-serif" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    for p, (title, series) in enumerate(panels):
        top = p * panel_h
        plot_w = width - legend_w - 2 * pad
        plot_h = panel_h - 2 * pad
        values = [v for vs in series.values() for v in vs if v is not None]
        vmax = max(values) if values else 1.0
        vmax = vmax if vmax > 0 else 1.0
        parts.append(
            f'<text x="{pad}" y="{top + 18}" font-size="14" '
            f'font-weight="bold">{_svg_escape(title)}</text>'
        )
        # Axes.
        x0, y0 = pad, top + pad
        parts.append(
            f'<rect x="{x0}" y="{y0}" width="{plot_w}" height="{plot_h}" '
            'fill="none" stroke="#999"/>'
        )
        nruns = max(2, len(labels))
        for i, label in enumerate(labels):
            x = x0 + plot_w * i / (nruns - 1)
            parts.append(
                f'<text x="{x:.1f}" y="{y0 + plot_h + 16}" '
                f'text-anchor="middle">{_svg_escape(label)}</text>'
            )
        parts.append(
            f'<text x="{x0 - 6}" y="{y0 + 10}" text-anchor="end">'
            f"{vmax:.3g}</text>"
        )
        parts.append(
            f'<text x="{x0 - 6}" y="{y0 + plot_h}" text-anchor="end">0</text>'
        )
        for s, (name, vs) in enumerate(sorted(series.items())):
            color = PALETTE[s % len(PALETTE)]
            points = []
            for i, v in enumerate(vs):
                if v is None:
                    continue
                x = x0 + plot_w * i / (nruns - 1)
                y = y0 + plot_h * (1.0 - v / vmax)
                points.append(f"{x:.1f},{y:.1f}")
            if points:
                parts.append(
                    f'<polyline points="{" ".join(points)}" fill="none" '
                    f'stroke="{color}" stroke-width="1.6"/>'
                )
                for pt in points:
                    x, y = pt.split(",")
                    parts.append(
                        f'<circle cx="{x}" cy="{y}" r="2.4" fill="{color}"/>'
                    )
            ly = y0 + 12 * s
            lx = x0 + plot_w + 14
            parts.append(
                f'<line x1="{lx}" y1="{ly}" x2="{lx + 16}" y2="{ly}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(
                f'<text x="{lx + 20}" y="{ly + 4}">{_svg_escape(name)}</text>'
            )
    parts.append("</svg>")
    with open(out_path, "w", encoding="utf-8") as f:
        f.write("\n".join(parts))


def render_matplotlib(panels, labels, out_path):
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, axes = plt.subplots(
        len(panels), 1, figsize=(9, 3.2 * len(panels)), squeeze=False
    )
    xs = range(len(labels))
    for ax, (title, series) in zip(axes[:, 0], panels):
        for name, vs in sorted(series.items()):
            ax.plot(xs, vs, marker="o", label=name, linewidth=1.4)
        ax.set_title(title)
        ax.set_xticks(list(xs))
        ax.set_xticklabels(labels)
        ax.set_ylim(bottom=0)
        ax.legend(fontsize=7, loc="center left", bbox_to_anchor=(1.01, 0.5))
        ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, bbox_inches="tight")


# ---------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", help="BENCH_*.json files")
    ap.add_argument("--out", default="bench_trajectory.svg")
    ap.add_argument(
        "--labels",
        help="comma-separated run labels (default: parent directory names, "
        "in first-appearance order)",
    )
    args = ap.parse_args()

    # Group files into runs by parent directory, preserving order.
    runs = []  # [(label, {bench: doc})]
    for path in args.files:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"skipping {path}: {e}", file=sys.stderr)
            continue
        label = os.path.basename(os.path.dirname(os.path.abspath(path)))
        bench = doc.get("bench", os.path.basename(path))
        for run_label, docs in runs:
            if run_label == label and bench not in docs:
                docs[bench] = doc
                break
        else:
            runs.append((label, {bench: doc}))
    if not runs:
        print("no readable input files", file=sys.stderr)
        return 1
    labels = [label for label, _ in runs]
    if args.labels:
        custom = args.labels.split(",")
        labels = custom + labels[len(custom):]

    benches = []
    for _, docs in runs:
        for bench in docs:
            if bench not in benches:
                benches.append(bench)
    panels = []
    for bench in benches:
        extract = EXTRACTORS.get(bench)
        if not extract:
            print(f"no extractor for bench '{bench}', skipping", file=sys.stderr)
            continue
        per_run = [extract(docs[bench]) if bench in docs else {}
                   for _, docs in runs]
        names = sorted({name for series in per_run for name in series})
        series = {n: [series.get(n) for series in per_run] for n in names}
        if series:
            panels.append((bench, series))
    if not panels:
        print("nothing to plot", file=sys.stderr)
        return 1

    try:
        render_matplotlib(panels, labels, args.out)
        backend = "matplotlib"
    except ImportError:
        if not args.out.endswith(".svg"):
            args.out = os.path.splitext(args.out)[0] + ".svg"
        render_svg(panels, labels, args.out)
        backend = "builtin svg"
    print(f"wrote {args.out} ({backend}; {len(panels)} panel(s), "
          f"{len(labels)} run(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
