// xqjg_cli — scripted wire-protocol client for xqjg_serverd.
//
// Drives one server session from the command line; CI's server-smoke
// job and the README quickstart are its main consumers. Actions run in
// a fixed order (loads, then index DDL, then the query, then stats), so
// one invocation can seed a server and query it:
//
//   xqjg_cli --query '//item[price > 50.0]/name' --context-doc auction.xml
//   xqjg_cli --load doc.xml=path/to/doc.xml --index-ddl create --stats
//   xqjg_cli --query '... $minprice ...' --param minprice=10.5
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/value.h"
#include "src/server/client.h"

namespace {

struct CliOptions {
  std::string host = "127.0.0.1";
  int port = 7878;
  std::vector<std::pair<std::string, std::string>> loads;  // uri -> path
  std::string index_ddl;  // "", "create", "drop"
  std::string query;
  std::string mode = "joingraph";
  std::string context_doc;
  std::map<std::string, xqjg::Value> params;
  uint32_t fetch_batch = 64;
  bool stats = false;
  bool quiet = false;  // suppress result items (CI wants counts only)
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --host H            server address (default 127.0.0.1)\n"
      "  --port N            server port (default 7878)\n"
      "  --load URI=PATH     LOAD_DOC the file at PATH as URI (repeatable)\n"
      "  --index-ddl A       'create' or 'drop' the relational index set\n"
      "  --query Q           prepare + execute + fetch Q\n"
      "  --mode M            stacked|joingraph|nativewhole|nativesegmented\n"
      "  --context-doc URI   context document for absolute paths\n"
      "  --param N=V         bind external parameter $N (repeatable;\n"
      "                      V parses as a number when it looks like one,\n"
      "                      'null' binds NULL)\n"
      "  --fetch N           fetch batch size (default 64)\n"
      "  --stats             print server stats JSON\n"
      "  --quiet             print counts, not items\n",
      argv0);
}

xqjg::Value ParseParamValue(const std::string& text) {
  if (text == "null") return xqjg::Value::Null();
  char* end = nullptr;
  const double d = std::strtod(text.c_str(), &end);
  if (end != nullptr && *end == '\0' && end != text.c_str()) {
    return xqjg::Value::Double(d);
  }
  return xqjg::Value::String(text);
}

int ModeByte(const std::string& mode) {
  if (mode == "stacked") return 0;
  if (mode == "joingraph") return 1;
  if (mode == "nativewhole") return 2;
  if (mode == "nativesegmented") return 3;
  return -1;
}

bool ParseArgs(int argc, char** argv, CliOptions* out) {
  auto need = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    } else if (arg == "--stats") {
      out->stats = true;
    } else if (arg == "--quiet") {
      out->quiet = true;
    } else if (!need(i)) {
      std::fprintf(stderr, "%s needs a value (see --help)\n", arg.c_str());
      return false;
    } else if (arg == "--host") {
      out->host = argv[++i];
    } else if (arg == "--port") {
      out->port = std::atoi(argv[++i]);
    } else if (arg == "--load") {
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--load wants URI=PATH, got %s\n", spec.c_str());
        return false;
      }
      out->loads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--index-ddl") {
      out->index_ddl = argv[++i];
    } else if (arg == "--query") {
      out->query = argv[++i];
    } else if (arg == "--mode") {
      out->mode = argv[++i];
    } else if (arg == "--context-doc") {
      out->context_doc = argv[++i];
    } else if (arg == "--param") {
      const std::string spec = argv[++i];
      const size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "--param wants NAME=VALUE, got %s\n",
                     spec.c_str());
        return false;
      }
      out->params[spec.substr(0, eq)] = ParseParamValue(spec.substr(eq + 1));
    } else if (arg == "--fetch") {
      out->fetch_batch = static_cast<uint32_t>(std::atoi(argv[++i]));
    } else {
      std::fprintf(stderr, "unknown option %s (see --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Fail(const xqjg::Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xqjg;

  CliOptions options;
  if (!ParseArgs(argc, argv, &options)) return 2;
  const int mode_byte = ModeByte(options.mode);
  if (mode_byte < 0) {
    std::fprintf(stderr, "unknown mode %s\n", options.mode.c_str());
    return 2;
  }

  auto connected = server::Client::Connect(options.host, options.port);
  if (!connected.ok()) return Fail(connected.status());
  server::Client& client = *connected.value();

  for (const auto& [uri, path] : options.loads) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const Status s = client.LoadDocument(uri, text.str());
    if (!s.ok()) return Fail(s);
    std::printf("loaded %s\n", uri.c_str());
  }

  if (!options.index_ddl.empty()) {
    if (options.index_ddl != "create" && options.index_ddl != "drop") {
      std::fprintf(stderr, "--index-ddl wants create|drop\n");
      return 2;
    }
    const Status s = client.IndexDdl(options.index_ddl == "create" ? 0 : 1);
    if (!s.ok()) return Fail(s);
    std::printf("index ddl: %s ok\n", options.index_ddl.c_str());
  }

  if (!options.query.empty()) {
    auto prepared = client.Prepare(options.query,
                                   static_cast<uint8_t>(mode_byte),
                                   options.context_doc);
    if (!prepared.ok()) return Fail(prepared.status());
    auto executed = client.Execute(prepared.value().statement_id,
                                   options.params);
    if (!executed.ok()) return Fail(executed.status());
    uint64_t fetched = 0;
    for (;;) {
      auto batch =
          client.Fetch(executed.value().cursor_id, options.fetch_batch);
      if (!batch.ok()) return Fail(batch.status());
      for (const auto& item : batch.value().items) {
        ++fetched;
        if (!options.quiet) std::printf("%s\n", item.c_str());
      }
      if (batch.value().exhausted) break;
    }
    const Status closed = client.CloseCursor(executed.value().cursor_id);
    if (!closed.ok()) return Fail(closed);
    std::printf("rows: %llu (%.3fs execute, class %s)\n",
                static_cast<unsigned long long>(fetched),
                executed.value().execute_seconds,
                prepared.value().query_class == 0 ? "cheap" : "heavy");
  }

  if (options.stats) {
    auto stats = client.ServerStats();
    if (!stats.ok()) return Fail(stats.status());
    std::printf("%s\n", stats.value().c_str());
  }

  const Status bye = client.Goodbye();
  if (!bye.ok()) return Fail(bye);
  return 0;
}
