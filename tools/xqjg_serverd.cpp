// xqjg_serverd — the query-server daemon.
//
// Starts one XQueryProcessor, optionally loads the paper corpus (XMark +
// DBLP with the Table VI relational indexes), and serves the wire
// protocol (docs/PROTOCOL.md) until SIGINT/SIGTERM or --duration
// expires. Prints "listening on <host>:<port>" once ready and a stats
// JSON line at exit, which CI's server-smoke job asserts on.
//
//   xqjg_serverd --port 7878 --xmark-scale 1 --dblp-pubs 2000
//   xqjg_serverd --port 0 --no-corpus          # ephemeral port, empty
//   xqjg_serverd --duration 5                  # self-terminating (CI)
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include <semaphore.h>

#include "src/api/paper_queries.h"
#include "src/api/processor.h"
#include "src/data/dblp.h"
#include "src/data/xmark.h"
#include "src/server/server.h"

namespace {

// Signal handling: the handler only posts a semaphore (async-signal-
// safe); main blocks on it and runs the graceful Stop.
sem_t g_stop_sem;

void HandleSignal(int) { sem_post(&g_stop_sem); }

struct DaemonOptions {
  xqjg::server::ServerConfig server;
  double xmark_scale = 1.0;
  int dblp_pubs = 2000;
  bool corpus = true;
  double duration_seconds = -1.0;  // < 0: run until signaled
  bool quiet = false;
};

void PrintUsage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --host H             bind address (default 127.0.0.1)\n"
      "  --port N             TCP port; 0 picks one (default 7878)\n"
      "  --xmark-scale S      XMark scale for the corpus (default 1.0)\n"
      "  --dblp-pubs N        DBLP publications (default 2000)\n"
      "  --no-corpus          start with an empty catalog\n"
      "  --max-sessions N     concurrent session cap (default 64)\n"
      "  --idle-timeout S     reap sessions idle this long (default 300)\n"
      "  --reap-interval S    reaper period (default 5)\n"
      "  --cheap-slots N      admission slots, cheap class (default 4)\n"
      "  --heavy-slots N      admission slots, heavy class (default 1)\n"
      "  --cheap-queue N      admission queue, cheap class (default 16)\n"
      "  --heavy-queue N      admission queue, heavy class (default 4)\n"
      "  --queue-wait S       max admission wait (default 2.0)\n"
      "  --heavy-cost C       est_cost heavy threshold (default 5e5)\n"
      "  --exec-timeout S     per-fetch wall-clock budget (default 30)\n"
      "  --max-rows N         intermediate-row budget (default engine)\n"
      "  --max-memory N       per-execution memory budget in bytes before\n"
      "                       operators spill to disk (0 = unlimited)\n"
      "  --max-cursors N      open cursors per session (default 8)\n"
      "  --threads N          morsel workers per execution (default 1)\n"
      "  --duration S         exit after S seconds (default: signal)\n"
      "  --quiet              suppress the startup banner\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, DaemonOptions* out) {
  auto need = [&](int i) { return i + 1 < argc; };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      return false;
    } else if (arg == "--no-corpus") {
      out->corpus = false;
    } else if (arg == "--quiet") {
      out->quiet = true;
    } else if (!need(i)) {
      std::fprintf(stderr, "%s needs a value (see --help)\n", arg.c_str());
      return false;
    } else if (arg == "--host") {
      out->server.host = argv[++i];
    } else if (arg == "--port") {
      out->server.port = std::atoi(argv[++i]);
    } else if (arg == "--xmark-scale") {
      out->xmark_scale = std::atof(argv[++i]);
    } else if (arg == "--dblp-pubs") {
      out->dblp_pubs = std::atoi(argv[++i]);
    } else if (arg == "--max-sessions") {
      out->server.max_sessions = std::atoi(argv[++i]);
    } else if (arg == "--idle-timeout") {
      out->server.idle_timeout_seconds = std::atof(argv[++i]);
    } else if (arg == "--reap-interval") {
      out->server.reap_interval_seconds = std::atof(argv[++i]);
    } else if (arg == "--cheap-slots") {
      out->server.admission.cheap_slots = std::atoi(argv[++i]);
    } else if (arg == "--heavy-slots") {
      out->server.admission.heavy_slots = std::atoi(argv[++i]);
    } else if (arg == "--cheap-queue") {
      out->server.admission.cheap_queue = std::atoi(argv[++i]);
    } else if (arg == "--heavy-queue") {
      out->server.admission.heavy_queue = std::atoi(argv[++i]);
    } else if (arg == "--queue-wait") {
      out->server.admission.max_queue_wait_seconds = std::atof(argv[++i]);
    } else if (arg == "--heavy-cost") {
      out->server.admission.heavy_cost_threshold = std::atof(argv[++i]);
    } else if (arg == "--exec-timeout") {
      out->server.session.limits.timeout_seconds = std::atof(argv[++i]);
    } else if (arg == "--max-rows") {
      out->server.session.limits.max_intermediate_rows =
          std::atoll(argv[++i]);
    } else if (arg == "--max-memory") {
      out->server.session.limits.max_memory_bytes = std::atoll(argv[++i]);
    } else if (arg == "--max-cursors") {
      out->server.session.max_cursors = std::atoi(argv[++i]);
    } else if (arg == "--threads") {
      out->server.session.exec_threads = std::atoi(argv[++i]);
    } else if (arg == "--duration") {
      out->duration_seconds = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown option %s (see --help)\n", arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace xqjg;

  DaemonOptions options;
  options.server.port = 7878;
  options.server.session.limits.timeout_seconds = 30.0;
  if (!ParseArgs(argc, argv, &options)) return 2;

  api::XQueryProcessor processor;
  if (options.corpus) {
    data::XmarkOptions xmark;
    xmark.scale = options.xmark_scale;
    data::DblpOptions dblp;
    dblp.publications = options.dblp_pubs;
    Status s = processor.LoadDocument("auction.xml", data::GenerateXmark(xmark),
                                      api::XmarkSegmentTags());
    if (s.ok()) {
      s = processor.LoadDocument("dblp.xml", data::GenerateDblp(dblp),
                                 api::DblpSegmentTags());
    }
    if (s.ok()) s = processor.CreateRelationalIndexes();
    if (!s.ok()) {
      std::fprintf(stderr, "corpus load failed: %s\n", s.ToString().c_str());
      return 1;
    }
    for (auto& pattern : api::PaperPatternIndexes()) {
      processor.CreatePatternIndex(std::move(pattern));
    }
  }

  server::QueryServer server(&processor, options.server);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  if (!options.quiet) {
    std::printf("listening on %s:%d\n", options.server.host.c_str(),
                server.port());
    std::fflush(stdout);
  }

  sem_init(&g_stop_sem, 0, 0);
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  if (options.duration_seconds >= 0) {
    timespec deadline{};
    clock_gettime(CLOCK_REALTIME, &deadline);
    deadline.tv_sec += static_cast<time_t>(options.duration_seconds);
    deadline.tv_nsec += static_cast<long>(
        (options.duration_seconds -
         static_cast<double>(static_cast<time_t>(options.duration_seconds))) *
        1e9);
    if (deadline.tv_nsec >= 1000000000L) {
      deadline.tv_sec += 1;
      deadline.tv_nsec -= 1000000000L;
    }
    while (sem_timedwait(&g_stop_sem, &deadline) < 0 && errno == EINTR) {
    }
  } else {
    while (sem_wait(&g_stop_sem) < 0 && errno == EINTR) {
    }
  }

  server.Stop();
  std::printf("%s\n", server.StatsJson().c_str());
  return 0;
}
